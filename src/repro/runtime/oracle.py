"""Memoizing oracle for satisfiability and MILP feasibility calls.

The exploration loop (Fig. 1) and the Table II / Fig. 5 sweeps re-issue
near-identical solver queries: the same path-refinement UNSAT checks
recur across iterations, scenarios and template sizes, and a re-run of a
sweep repeats *every* query verbatim. :class:`OracleCache` intercepts
those calls behind a small protocol seam (see
:func:`repro.solver.feasibility.check_sat` and
:class:`repro.explore.engine.ContrArcExplorer`) and serves repeats from
an in-memory LRU, optionally backed by an on-disk
:class:`repro.runtime.store.SQLiteStore` so later runs warm-start.

Cached values are plain JSON-compatible dicts with assignments keyed by
*variable name*; on a hit the witness is re-attached to the querying
formula's (or model's) own :class:`~repro.expr.terms.Var` objects, so
identity-based variable semantics are preserved inside each process.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional, Sequence

from repro.expr.constraints import Formula
from repro.expr.terms import Var
from repro.runtime.keys import formula_key, model_key
from repro.solver.model import Model
from repro.solver.result import SolveResult, SolveStatus


def encode_sat_result(result: Any) -> Dict[str, Any]:
    """JSON-compatible cache value for a SatResult (witness by name)."""
    return {
        "sat": bool(result.satisfiable),
        "witness": {
            var.name: float(value) for var, value in result.assignment.items()
        },
    }


def decode_sat_result(formula: Formula, cached: Mapping[str, Any]) -> Any:
    """Re-attach a cached by-name witness to ``formula``'s own Vars."""
    from repro.solver.feasibility import SatResult

    by_name = {var.name: var for var in formula.variables()}
    witness = {
        by_name[name]: value
        for name, value in cached["witness"].items()
        if name in by_name
    }
    return SatResult(bool(cached["sat"]), witness)


class OracleStats:
    """Hit/miss/store counters for one oracle instance."""

    __slots__ = ("hits", "misses", "stores", "uncacheable")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Queries skipped because the result cannot be keyed safely
        #: (e.g. duplicate variable names would make a by-name witness
        #: ambiguous).
        self.uncacheable = 0

    @property
    def queries(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.queries if self.queries else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (
            f"OracleStats(hits={self.hits}, misses={self.misses}, "
            f"rate={self.hit_rate:.0%})"
        )


class OracleCache:
    """Content-addressed memo for sat queries and MILP solves.

    Parameters
    ----------
    max_entries:
        LRU capacity of the in-memory layer (per process).
    store:
        Optional persistent second layer with ``get(key) -> dict | None``
        and ``put(key, value: dict)`` — see
        :class:`repro.runtime.store.SQLiteStore`. Misses that fall
        through memory consult the store; computed answers are written
        to both layers.
    """

    def __init__(self, max_entries: int = 100_000, store: Optional[Any] = None) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_entries = max_entries
        self.store = store
        self.stats = OracleStats()
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()

    # -- generic two-layer lookup ------------------------------------------

    def _get(self, key: str) -> Optional[Dict[str, Any]]:
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return self._memory[key]
        if self.store is not None:
            value = self.store.get(key)
            if value is not None:
                self._remember(key, value)
                self.stats.hits += 1
                return value
        self.stats.misses += 1
        return None

    def _put(self, key: str, value: Dict[str, Any]) -> None:
        self._remember(key, value)
        if self.store is not None:
            self.store.put(key, value)
        self.stats.stores += 1

    def _remember(self, key: str, value: Dict[str, Any]) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)

    # -- batched lookup/insert ---------------------------------------------

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Look up a batch of keys in one pass (absent keys omitted).

        The memory layer is consulted per key; keys that fall through are
        fetched from the store in a *single* round-trip. Each distinct
        requested key counts as one hit or miss, exactly as if queried
        through :meth:`_get` one by one.
        """
        found: Dict[str, Dict[str, Any]] = {}
        missing: list = []
        for key in dict.fromkeys(keys):
            if key in self._memory:
                self._memory.move_to_end(key)
                found[key] = self._memory[key]
            else:
                missing.append(key)
        if missing and self.store is not None:
            fetched = getattr(self.store, "get_many", None)
            if fetched is not None:
                stored = self.store.get_many(missing)
            else:
                stored = {}
                for key in missing:
                    value = self.store.get(key)
                    if value is not None:
                        stored[key] = value
            for key, value in stored.items():
                self._remember(key, value)
                found[key] = value
            missing = [key for key in missing if key not in stored]
        self.stats.hits += len(found)
        self.stats.misses += len(missing)
        return found

    def put_many(self, entries: Mapping[str, Dict[str, Any]]) -> None:
        """Insert a batch of computed answers in one round-trip."""
        for key, value in entries.items():
            self._remember(key, value)
        if self.store is not None:
            if hasattr(self.store, "put_many"):
                self.store.put_many(dict(entries))
            else:
                for key, value in entries.items():
                    self.store.put(key, value)
        self.stats.stores += len(entries)

    def __len__(self) -> int:
        return len(self._memory)

    def close(self) -> None:
        """Release the persistent layer (idempotent).

        The in-memory layer needs no teardown; the store's SQLite
        connection does — WAL/SHM sidecar files persist until the last
        connection closes.
        """
        store, self.store = self.store, None
        if store is not None and hasattr(store, "close"):
            store.close()

    # -- the oracle protocol ------------------------------------------------

    def sat_query(
        self,
        formula: Formula,
        backend: str,
        default_big_m: Optional[float],
        compute: Callable[[], Any],
    ) -> Any:
        """Serve a satisfiability query, computing on miss.

        ``compute`` returns a :class:`repro.solver.feasibility.SatResult`;
        the class is not imported here to keep the dependency one-way
        (runtime -> solver at call time only).
        """
        by_name = {var.name: var for var in formula.variables()}
        if len(by_name) != len(formula.variables()):
            # Duplicate names would make the by-name witness ambiguous.
            self.stats.uncacheable += 1
            return compute()
        key = formula_key(formula, backend=backend, default_big_m=default_big_m)
        cached = self._get(key)
        if cached is not None:
            return decode_sat_result(formula, cached)
        result = compute()
        self._put(key, encode_sat_result(result))
        return result

    def milp_solve(
        self,
        model: Model,
        backend: str,
        solve: Callable[[Model], SolveResult],
    ) -> SolveResult:
        """Serve a full MILP solve, computing on miss."""
        by_name = {var.name: var for var in model.variables}
        if len(by_name) != model.num_variables:
            self.stats.uncacheable += 1
            return solve(model)
        key = model_key(model, backend=backend)
        cached = self._get(key)
        if cached is not None:
            assignment = {
                by_name[name]: value
                for name, value in cached["assignment"].items()
                if name in by_name
            }
            return SolveResult(
                SolveStatus(cached["status"]),
                objective=cached["objective"],
                assignment=assignment,
                iterations=int(cached.get("iterations", 0)),
                message=cached.get("message", ""),
            )
        result = solve(model)
        if result.status not in (SolveStatus.OPTIMAL, SolveStatus.INFEASIBLE):
            # Limits and errors are run-specific; never replay them.
            self.stats.uncacheable += 1
            return result
        self._put(
            key,
            {
                "status": result.status.value,
                "objective": result.objective,
                "assignment": {
                    var.name: float(value)
                    for var, value in result.assignment.items()
                },
                "iterations": result.iterations,
                "message": result.message,
            },
        )
        return result

    def wrap_solver(
        self, backend: str, solve: Callable[[Model], SolveResult]
    ) -> Callable[[Model], SolveResult]:
        """Return a drop-in ``solve(model)`` that consults the cache."""

        def cached_solve(model: Model) -> SolveResult:
            return self.milp_solve(model, backend, solve)

        return cached_solve
