"""Sweep grids and result aggregation.

Builders produce the job grids behind the paper's artifacts:

* :func:`table2_grid` — the Table II matrix: EPN templates x the three
  certificate scenarios;
* :func:`fig5_rpl_grid` — the Fig. 5a axis: RPL instances of growing
  size under the complete method;
* :func:`wsn_grid` — a WSN scaling sweep (the "as many scenarios as you
  can imagine" axis beyond the paper).

:func:`run_sweep` drives a :class:`~repro.runtime.scheduler.Scheduler`
over a grid and returns a :class:`SweepReport` whose rows are plain
``JobResult.to_dict()`` records — the same records the per-command
``--json`` CLI flag prints, so ad-hoc runs and sweeps aggregate through
one path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.runtime.job import JobResult, JobSpec, SCENARIOS
from repro.runtime.ledger import completed_records, plan_resume
from repro.runtime.scheduler import Scheduler
from repro.runtime.telemetry import iter_events
from repro.reporting.tables import format_seconds, render_table

#: The representative Table II subset used when a full sweep is not
#: requested (mirrors benchmarks/conftest.py).
DEFAULT_EPN_TEMPLATES: Tuple[Tuple[int, int, int], ...] = (
    (1, 0, 0),
    (2, 0, 0),
    (1, 1, 0),
    (2, 1, 0),
)


def _engine(flags: Optional[Dict[str, Any]], **extra: Any) -> Dict[str, Any]:
    merged = dict(extra)
    merged.update(flags or {})
    return {k: v for k, v in merged.items() if v is not None}


def table2_grid(
    templates: Optional[Sequence[Tuple[int, int, int]]] = None,
    scenarios: Optional[Sequence[str]] = None,
    engine: Optional[Dict[str, Any]] = None,
) -> List[JobSpec]:
    """EPN templates x certificate scenarios (the Table II matrix)."""
    specs = []
    for left, right, apu in templates or DEFAULT_EPN_TEMPLATES:
        for scenario in scenarios or sorted(SCENARIOS):
            specs.append(
                JobSpec(
                    "epn",
                    sizes={"left": left, "right": right, "apu": apu},
                    engine=_engine(engine, scenario=scenario),
                    label=f"epn({left},{right},{apu}) {scenario}",
                )
            )
    return specs


def fig5_rpl_grid(
    max_n: int = 3,
    engine: Optional[Dict[str, Any]] = None,
) -> List[JobSpec]:
    """RPL instances of growing size (the Fig. 5a runtime axis)."""
    return [
        JobSpec(
            "rpl",
            sizes={"n_a": n, "n_b": 0},
            engine=_engine(engine, scenario="complete"),
            label=f"rpl(n={n}) complete",
        )
        for n in range(1, max_n + 1)
    ]


def wsn_grid(
    max_sensors: int = 3,
    relays: int = 2,
    tiers: int = 1,
    engine: Optional[Dict[str, Any]] = None,
) -> List[JobSpec]:
    """WSN instances of growing sensor count."""
    return [
        JobSpec(
            "wsn",
            sizes={"num_sensors": s, "num_relays": relays, "tiers": tiers},
            engine=_engine(engine, scenario="complete"),
            label=f"wsn(s={s},r={relays},t={tiers}) complete",
        )
        for s in range(1, max_sensors + 1)
    ]


GRIDS = {
    "table2-epn": lambda args: table2_grid(engine=args),
    "fig5-rpl": lambda args: fig5_rpl_grid(engine=args),
    "wsn": lambda args: wsn_grid(engine=args),
}


class SweepReport:
    """Aggregated outcome of one sweep run."""

    def __init__(
        self,
        results: Sequence[JobResult],
        wall_clock: float,
        replayed: int = 0,
    ) -> None:
        self.results = list(results)
        self.wall_clock = wall_clock
        #: How many rows came from a ``--resume`` ledger instead of
        #: being executed in this run.
        self.replayed = replayed

    @classmethod
    def from_journal(cls, path: str, strict: bool = False) -> "SweepReport":
        """Rebuild a report from a journal's last-record-wins ledger view.

        Aggregates over the same view as
        :func:`repro.runtime.ledger.load_ledger` — one record per job
        id, the last ``job_end`` winning — never over raw events: a
        journal holding both a crashed attempt and its retried (or
        resume-replayed) terminal record for one job counts that job
        once. Wall clock spans the journal's first to last timestamp.
        The ``repro serve`` namespace report endpoint is built on this.
        """
        ledger: Dict[str, Dict[str, Any]] = {}
        first_ts: Optional[float] = None
        last_ts: Optional[float] = None
        for event in iter_events(path, strict=strict):
            ts = event.get("ts")
            if ts is not None:
                first_ts = ts if first_ts is None else first_ts
                last_ts = ts
            if event.get("event") != "job_end":
                continue
            job_id = event.get("job_id")
            if job_id and event.get("spec"):
                ledger[job_id] = {
                    key: value
                    for key, value in event.items()
                    if key not in ("event", "ts")
                }
        results = [JobResult.from_dict(record) for record in ledger.values()]
        wall_clock = (
            last_ts - first_ts if first_ts is not None and last_ts else 0.0
        )
        return cls(results, wall_clock)

    def _latest_by_job(self) -> List[JobResult]:
        """Last-record-wins view of the rows, in first-seen job order.

        A report assembled from journal rows can legitimately carry
        several records for one job (a crashed attempt plus its
        replayed terminal record); every aggregate must count each job
        exactly once, mirroring ``load_ledger`` semantics.
        """
        latest: Dict[str, JobResult] = {}
        for result in self.results:
            latest[result.job_id] = result
        return list(latest.values())

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The machine-readable rows (``JobResult.to_dict()`` each)."""
        return [result.to_dict() for result in self.results]

    @property
    def cache_totals(self) -> Dict[str, Any]:
        jobs = self._latest_by_job()
        hits = sum(r.cache.get("hits", 0) for r in jobs)
        misses = sum(r.cache.get("misses", 0) for r in jobs)
        queries = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / queries if queries else 0.0,
        }

    @property
    def total_job_time(self) -> float:
        """Sum of per-job durations (serial-equivalent wall clock).

        Counts each job once (last record wins) even when the row set
        holds both a failed attempt and its terminal record.
        """
        return sum(r.duration for r in self._latest_by_job())

    def render(self, title: str = "sweep") -> str:
        rows = []
        for result in self.results:
            stats = result.stats
            rows.append(
                [
                    result.spec.label,
                    result.job_id[:8],
                    result.status,
                    format_seconds(result.duration),
                    stats.get("num_iterations"),
                    f"{result.cost:g}" if result.cost is not None else "-",
                    f"{result.cache.get('hit_rate', 0.0):.0%}"
                    if result.cache
                    else "-",
                ]
            )
        table = render_table(
            ["job", "id", "status", "time", "iters", "cost", "cache"],
            rows,
            title=title,
        )
        totals = self.cache_totals
        resumed = (
            f" ({self.replayed} replayed from ledger)" if self.replayed else ""
        )
        footer = (
            f"wall-clock {self.wall_clock:.2f}s over "
            f"{len(self._latest_by_job())} jobs"
            f"{resumed} "
            f"(sum of job times {self.total_job_time:.2f}s); "
            f"oracle cache: {totals['hits']} hits / "
            f"{totals['misses']} misses ({totals['hit_rate']:.0%})"
        )
        return f"{table}\n{footer}"


def run_sweep(
    specs: Sequence[JobSpec],
    scheduler: Optional[Scheduler] = None,
    resume: Optional[str] = None,
    **scheduler_kwargs: Any,
) -> SweepReport:
    """Run a grid and aggregate it. Extra kwargs configure the scheduler.

    ``resume`` names a telemetry journal from a previous (possibly
    killed) run of the same grid: jobs with a successful terminal
    ``job_end`` record are replayed from the ledger, everything else is
    executed, and the report interleaves both in grid order — so an
    interrupted sweep plus its resume yields the same report as one
    uninterrupted run (modulo wall-clock fields; see
    :func:`repro.runtime.ledger.canonical_record`).
    """
    import time

    scheduler = scheduler or Scheduler(**scheduler_kwargs)
    replay: Dict[str, Dict[str, Any]] = {}
    todo: Sequence[JobSpec] = specs
    if resume is not None:
        todo, replay = plan_resume(specs, completed_records(resume))
        scheduler.telemetry.emit(
            "sweep_resume",
            journal=resume,
            replayed=len(replay),
            pending=len(todo),
        )
    started = time.perf_counter()
    fresh = {result.job_id: result for result in scheduler.run(todo)}
    results = [
        fresh[spec.job_id]
        if spec.job_id in fresh
        else JobResult.from_dict(replay[spec.job_id])
        for spec in specs
    ]
    return SweepReport(
        results, time.perf_counter() - started, replayed=len(replay)
    )
