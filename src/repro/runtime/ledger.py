"""Durable run ledger: resume a killed sweep from its telemetry journal.

The scheduler journals one ``job_end`` event per terminal outcome, each
embedding the full :class:`~repro.runtime.job.JobResult` record keyed by
the spec's content-addressed ``job_id``. That journal *is* the ledger:
no second artifact, no extra write path — durability falls out of the
telemetry layer's flush-per-event contract.

``python -m repro sweep --resume JOURNAL`` replays the ledger and
re-runs only jobs without a successful terminal record, so a SIGKILLed
grid run (the minutes-to-hours Table II / Fig. 5 workloads) resumes
instead of restarting. Because job ids are content hashes of the spec,
replay is join-stable across processes, machines and code paths — the
grid builder regenerating the same specs finds the same ids.

Semantics:

* engine outcomes (``optimal``, ``infeasible``, ``iteration_limit``,
  ``time_limit``) are *results* — replayed verbatim, never re-run;
* runtime failures (``error``, ``crashed``, ``timeout``, ``cancelled``)
  are *incidents* — the job is re-run on resume;
* the last record per job id wins (a retry's eventual success
  supersedes an earlier failure appended by the same journal).

:func:`canonical_record` is the equivalence the resume tests (and the
CI chaos job) pin: a resumed sweep's records must equal an
uninterrupted sweep's records modulo wall-clock-dependent fields.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.runtime.job import JobSpec
from repro.runtime.telemetry import iter_events

#: Statuses that mean "the runtime failed the job", not "the job
#: produced an answer" — resuming re-runs these.
RUNTIME_FAILURES = frozenset({"error", "crashed", "timeout", "cancelled"})

#: Result fields whose values depend on wall clock, scheduling or cache
#: temperature rather than the exploration trajectory.
_VOLATILE_FIELDS = ("duration", "attempts", "cache", "error")
_VOLATILE_STATS = ("phase_profile", "oracle_cache")
_TIMING_SUFFIX = "_time"


def load_ledger(path: str, strict: bool = False) -> Dict[str, Dict[str, Any]]:
    """Read a journal into ``{job_id: last job_end record}``.

    Tolerates the truncated final line a killed run leaves behind
    (see :func:`repro.runtime.telemetry.iter_events`).
    """
    ledger: Dict[str, Dict[str, Any]] = {}
    for event in iter_events(path, strict=strict):
        if event.get("event") != "job_end":
            continue
        job_id = event.get("job_id")
        if job_id:
            ledger[job_id] = {
                key: value
                for key, value in event.items()
                if key not in ("event", "ts")
            }
    return ledger


def completed_records(path: str, strict: bool = False) -> Dict[str, Dict[str, Any]]:
    """The replayable subset of a ledger: successful terminal records."""
    return {
        job_id: record
        for job_id, record in load_ledger(path, strict=strict).items()
        if record.get("status") not in RUNTIME_FAILURES
    }


def plan_resume(
    specs: Sequence[JobSpec], completed: Dict[str, Dict[str, Any]]
) -> Tuple[List[JobSpec], Dict[str, Dict[str, Any]]]:
    """Split a grid into (jobs to run, records to replay).

    Ledger entries for jobs outside the grid are ignored — a journal
    may accumulate several different sweeps.
    """
    todo = [spec for spec in specs if spec.job_id not in completed]
    replay = {
        spec.job_id: completed[spec.job_id]
        for spec in specs
        if spec.job_id in completed
    }
    return todo, replay


def canonical_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """A ``JobResult.to_dict()`` record minus volatile fields.

    Strips wall-clock durations (top-level and per-iteration), retry
    counts, cache-temperature counters and error text; what remains —
    spec, status, cost, selected implementations, iteration/cut
    trajectory — is deterministic for a given spec, so a resumed sweep
    must reproduce it byte-for-byte.
    """
    def scrub(value: Any, drop: Iterable[str]) -> Any:
        if isinstance(value, dict):
            return {
                key: scrub(inner, ())
                for key, inner in value.items()
                if key not in drop and not key.endswith(_TIMING_SUFFIX)
            }
        if isinstance(value, list):
            return [scrub(item, ()) for item in value]
        return value

    canonical = {
        key: value
        for key, value in record.items()
        if key not in _VOLATILE_FIELDS
    }
    canonical["stats"] = scrub(
        record.get("stats") or {}, _VOLATILE_STATS
    )
    return canonical
