"""Durable run ledger: resume a killed sweep from its telemetry journal.

The scheduler journals one ``job_end`` event per terminal outcome, each
embedding the full :class:`~repro.runtime.job.JobResult` record keyed by
the spec's content-addressed ``job_id``. That journal *is* the ledger:
no second artifact, no extra write path — durability falls out of the
telemetry layer's flush-per-event contract.

``python -m repro sweep --resume JOURNAL`` replays the ledger and
re-runs only jobs without a successful terminal record, so a SIGKILLed
grid run (the minutes-to-hours Table II / Fig. 5 workloads) resumes
instead of restarting. Because job ids are content hashes of the spec,
replay is join-stable across processes, machines and code paths — the
grid builder regenerating the same specs finds the same ids.

Semantics:

* engine outcomes (``optimal``, ``infeasible``, ``iteration_limit``,
  ``time_limit``) are *results* — replayed verbatim, never re-run;
* runtime failures (``error``, ``crashed``, ``timeout``, ``cancelled``)
  are *incidents* — the job is re-run on resume;
* the last record per job id wins (a retry's eventual success
  supersedes an earlier failure appended by the same journal).

:func:`canonical_record` is the equivalence the resume tests (and the
CI chaos job) pin: a resumed sweep's records must equal an
uninterrupted sweep's records modulo wall-clock-dependent fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.job import JobSpec
from repro.runtime.telemetry import iter_events

#: Statuses that mean "the runtime failed the job", not "the job
#: produced an answer" — resuming re-runs these.
RUNTIME_FAILURES = frozenset({"error", "crashed", "timeout", "cancelled"})

#: Result fields whose values depend on wall clock, scheduling or cache
#: temperature rather than the exploration trajectory.
_VOLATILE_FIELDS = ("duration", "attempts", "cache", "error")
_VOLATILE_STATS = ("phase_profile", "oracle_cache")
_TIMING_SUFFIX = "_time"


def load_ledger(path: str, strict: bool = False) -> Dict[str, Dict[str, Any]]:
    """Read a journal into ``{job_id: last job_end record}``.

    Tolerates the truncated final line a killed run leaves behind
    (see :func:`repro.runtime.telemetry.iter_events`).
    """
    ledger: Dict[str, Dict[str, Any]] = {}
    for event in iter_events(path, strict=strict):
        if event.get("event") != "job_end":
            continue
        job_id = event.get("job_id")
        if job_id:
            ledger[job_id] = {
                key: value
                for key, value in event.items()
                if key not in ("event", "ts")
            }
    return ledger


def completed_records(path: str, strict: bool = False) -> Dict[str, Dict[str, Any]]:
    """The replayable subset of a ledger: successful terminal records."""
    return {
        job_id: record
        for job_id, record in load_ledger(path, strict=strict).items()
        if record.get("status") not in RUNTIME_FAILURES
    }


def plan_resume(
    specs: Sequence[JobSpec], completed: Dict[str, Dict[str, Any]]
) -> Tuple[List[JobSpec], Dict[str, Dict[str, Any]]]:
    """Split a grid into (jobs to run, records to replay).

    Ledger entries for jobs outside the grid are ignored — a journal
    may accumulate several different sweeps.
    """
    todo = [spec for spec in specs if spec.job_id not in completed]
    replay = {
        spec.job_id: completed[spec.job_id]
        for spec in specs
        if spec.job_id in completed
    }
    return todo, replay


#: Journal events that record the runtime fighting something — retries,
#: degradation, backstop timeouts, cancellation — as opposed to the
#: ordinary job lifecycle. The fleet dashboard plots these as markers.
INCIDENT_EVENTS = frozenset(
    {"job_retry", "scheduler_degraded", "job_timeout", "sweep_cancelled"}
)


@dataclass(frozen=True)
class Incident:
    """One runtime incident extracted from a sweep journal."""

    kind: str  # the journal event name
    ts: float  # absolute journal timestamp (Unix seconds)
    job_id: Optional[str] = None
    detail: str = ""


@dataclass(frozen=True)
class JobLane:
    """One job's swimlane: first submission to terminal outcome."""

    job_id: str
    label: str
    start: float  # first job_start ts (or end ts for replayed jobs)
    end: float  # terminal job_end ts
    status: str
    attempts: int
    replayed: bool  # terminal record predates the last sweep_resume


@dataclass
class SweepTimeline:
    """A sweep journal reduced to what the fleet view plots.

    ``origin`` is the first event timestamp — all rendering is relative
    to it, so two identical journals produce identical views regardless
    of when they were recorded.
    """

    origin: float = 0.0
    end: float = 0.0
    jobs: List[JobLane] = field(default_factory=list)
    incidents: List[Incident] = field(default_factory=list)
    total_jobs: int = 0  # from sweep_start, 0 if the header is missing
    workers: int = 0
    resume_ts: Optional[float] = None  # last sweep_resume, if any
    replayed: int = 0  # jobs replayed from the ledger on resume
    depth: List[Tuple[float, int]] = field(default_factory=list)  # (ts, in-flight)


def extract_incidents(path: str, strict: bool = False) -> List[Incident]:
    """Pull retry/backoff/degradation incidents out of a sweep journal.

    Each :data:`INCIDENT_EVENTS` record becomes one :class:`Incident`
    with a human-readable ``detail`` line, in journal order — the
    mechanical input behind the dashboard's incident markers and table.
    """
    incidents: List[Incident] = []
    for event in iter_events(path, strict=strict):
        kind = event.get("event")
        if kind not in INCIDENT_EVENTS:
            continue
        ts = float(event.get("ts", 0.0))
        if kind == "job_retry":
            detail = (
                f"attempt {event.get('attempt', '?')} crashed, "
                f"backoff {event.get('backoff', 0.0):.2f}s"
            )
        elif kind == "scheduler_degraded":
            detail = (
                f"{event.get('rebuilds', '?')} pool rebuilds, "
                f"{event.get('remaining', '?')} jobs drained serially"
            )
        elif kind == "job_timeout":
            detail = (
                f"no response after {event.get('after', '?')}s "
                f"({event.get('stage', 'worker')})"
            )
        else:  # sweep_cancelled
            detail = f"{event.get('completed', '?')} jobs completed before cancel"
        incidents.append(Incident(kind, ts, event.get("job_id"), detail))
    return incidents


def sweep_timeline(path: str, strict: bool = False) -> SweepTimeline:
    """Reduce a sweep journal to job swimlanes, incidents and queue depth.

    Jobs keep journal (start) order. A job whose terminal ``job_end``
    precedes the last ``sweep_resume`` marker was replayed from the
    ledger rather than executed by the resuming run. The ``depth``
    series steps at every start/end: how many jobs were in flight.
    """
    events = list(iter_events(path, strict=strict))
    timeline = SweepTimeline()
    if not events:
        return timeline
    timeline.origin = float(events[0].get("ts", 0.0))
    timeline.end = float(events[-1].get("ts", timeline.origin))
    first_start: Dict[str, float] = {}
    order: List[str] = []
    terminal: Dict[str, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("event")
        ts = float(event.get("ts", 0.0))
        job_id = event.get("job_id")
        if kind == "sweep_start":
            timeline.total_jobs = int(event.get("jobs", 0))
            timeline.workers = int(event.get("workers", 0))
        elif kind == "sweep_resume":
            timeline.resume_ts = ts
            timeline.replayed = int(event.get("replayed", 0))
        elif kind == "job_start" and job_id:
            if job_id not in first_start:
                first_start[job_id] = ts
                order.append(job_id)
        elif kind == "job_end" and job_id:
            if job_id not in first_start:
                order.append(job_id)  # replayed: no start in this journal slice
            terminal[job_id] = dict(event, ts=ts)
    for job_id in order:
        record = terminal.get(job_id)
        end_ts = float(record["ts"]) if record else timeline.end
        start_ts = first_start.get(job_id, end_ts)
        replayed = (
            timeline.resume_ts is not None
            and record is not None
            and float(record["ts"]) < timeline.resume_ts
        )
        spec = (record or {}).get("spec") or {}
        timeline.jobs.append(
            JobLane(
                job_id,
                str(spec.get("label") or (record or {}).get("label") or job_id[:8]),
                start_ts,
                end_ts,
                str((record or {}).get("status", "unfinished")),
                int((record or {}).get("attempts", 1) or 1),
                bool(replayed),
            )
        )
    timeline.incidents = extract_incidents(path, strict=strict)
    # In-flight depth: +1 at each first start, -1 at each terminal end.
    steps: List[Tuple[float, int]] = []
    for lane in timeline.jobs:
        if not lane.replayed and lane.start < lane.end:
            steps.append((lane.start, +1))
            steps.append((lane.end, -1))
    steps.sort()
    depth = 0
    series: List[Tuple[float, int]] = []
    for ts, delta in steps:
        depth += delta
        if series and series[-1][0] == ts:
            series[-1] = (ts, depth)
        else:
            series.append((ts, depth))
    timeline.depth = series
    return timeline


def canonical_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """A ``JobResult.to_dict()`` record minus volatile fields.

    Strips wall-clock durations (top-level and per-iteration), retry
    counts, cache-temperature counters and error text; what remains —
    spec, status, cost, selected implementations, iteration/cut
    trajectory — is deterministic for a given spec, so a resumed sweep
    must reproduce it byte-for-byte.
    """
    def scrub(value: Any, drop: Iterable[str]) -> Any:
        if isinstance(value, dict):
            return {
                key: scrub(inner, ())
                for key, inner in value.items()
                if key not in drop and not key.endswith(_TIMING_SUFFIX)
            }
        if isinstance(value, list):
            return [scrub(item, ()) for item in value]
        return value

    canonical = {
        key: value
        for key, value in record.items()
        if key not in _VOLATILE_FIELDS
    }
    canonical["stats"] = scrub(
        record.get("stats") or {}, _VOLATILE_STATS
    )
    return canonical
