"""On-disk persistence for the oracle cache.

A :class:`SQLiteStore` is a process-safe key/value table of JSON
payloads. Worker processes of one sweep share a single database file:
SQLite's own locking (plus WAL journaling and a generous busy timeout)
serializes the writes, and because every entry is content-addressed a
lost race simply re-writes an identical row.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Any, Dict, Mapping, Optional, Sequence

_SCHEMA = """
CREATE TABLE IF NOT EXISTS oracle_cache (
    key     TEXT PRIMARY KEY,
    value   TEXT NOT NULL,
    created REAL NOT NULL
)
"""


class SQLiteStore:
    """Persistent JSON key/value store backing :class:`OracleCache`."""

    def __init__(self, path: str, busy_timeout: float = 30.0) -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path, timeout=busy_timeout)
        try:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(_SCHEMA)
            self._conn.commit()
        except sqlite3.DatabaseError:
            # A corrupt/garbage file fails here, not in connect();
            # release the handle before surfacing it so the caller's
            # degradation path does not leak a connection.
            self._conn.close()
            raise

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        row = self._conn.execute(
            "SELECT value FROM oracle_cache WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        return json.loads(row[0])

    def get_many(self, keys: Sequence[str]) -> Dict[str, Dict[str, Any]]:
        """Fetch every present key in one query (absent keys are omitted).

        The batch form exists for the in-run verification path: one
        candidate's worth of refinement queries becomes a single SQL
        round-trip instead of one per query.
        """
        found: Dict[str, Dict[str, Any]] = {}
        distinct = list(dict.fromkeys(keys))
        # SQLite caps host parameters per statement; stay well below it.
        for start in range(0, len(distinct), 500):
            chunk = distinct[start : start + 500]
            placeholders = ",".join("?" for _ in chunk)
            rows = self._conn.execute(
                f"SELECT key, value FROM oracle_cache "
                f"WHERE key IN ({placeholders})",
                chunk,
            ).fetchall()
            for key, value in rows:
                found[key] = json.loads(value)
        return found

    def put(self, key: str, value: Dict[str, Any]) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO oracle_cache (key, value, created) "
            "VALUES (?, ?, ?)",
            (key, json.dumps(value, sort_keys=True), time.time()),
        )
        self._conn.commit()

    def put_many(self, entries: Mapping[str, Dict[str, Any]]) -> None:
        """Insert a batch of entries in one transaction."""
        if not entries:
            return
        now = time.time()
        self._conn.executemany(
            "INSERT OR REPLACE INTO oracle_cache (key, value, created) "
            "VALUES (?, ?, ?)",
            [
                (key, json.dumps(value, sort_keys=True), now)
                for key, value in entries.items()
            ],
        )
        self._conn.commit()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM oracle_cache").fetchone()[0]

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SQLiteStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SQLiteStore({self.path!r}, entries={len(self)})"
