"""Parallel batch-exploration runtime.

Turns the one-script-at-a-time ContrArc loop into a schedulable
workload:

* :mod:`repro.runtime.job`       — :class:`JobSpec`/:class:`JobResult`,
  deterministic job ids;
* :mod:`repro.runtime.scheduler` — process-pool fan-out with timeout,
  retry-on-crash and graceful cancellation;
* :mod:`repro.runtime.oracle`    — content-addressed memo for
  refinement/satisfiability queries and candidate MILP solves;
* :mod:`repro.runtime.pool`      — persistent in-run worker pool for
  parallel refinement/embedding verification (``--workers``);
* :mod:`repro.runtime.store`     — SQLite persistence so repeated
  sweeps warm-start;
* :mod:`repro.runtime.keys`      — canonical hashing of formulas,
  contracts and MILP matrices;
* :mod:`repro.runtime.telemetry` — structured JSONL run events;
* :mod:`repro.runtime.ledger`    — durable run ledger over the journal
  (``sweep --resume``);
* :mod:`repro.runtime.faults`    — deterministic fault injection for
  chaos tests;
* :mod:`repro.runtime.sweep`     — Table II / Fig. 5 grids and result
  aggregation.
"""

from repro.runtime.job import JobResult, JobSpec, SCENARIOS
from repro.runtime.ledger import (
    canonical_record,
    completed_records,
    load_ledger,
    plan_resume,
)
from repro.runtime.keys import (
    canonical_formula,
    contract_key,
    contract_pair_key,
    formula_key,
    model_key,
)
from repro.runtime.oracle import OracleCache, OracleStats
from repro.runtime.pool import WorkerPool
from repro.runtime.scheduler import Scheduler, default_workers
from repro.runtime.store import SQLiteStore
from repro.runtime.sweep import (
    GRIDS,
    SweepReport,
    fig5_rpl_grid,
    run_sweep,
    table2_grid,
    wsn_grid,
)
from repro.runtime.telemetry import (
    NullTelemetry,
    TelemetryLogger,
    iter_events,
    read_events,
    tail_events,
)
from repro.runtime.worker import run_job

__all__ = [
    "JobResult",
    "JobSpec",
    "SCENARIOS",
    "canonical_record",
    "completed_records",
    "load_ledger",
    "plan_resume",
    "canonical_formula",
    "contract_key",
    "contract_pair_key",
    "formula_key",
    "model_key",
    "OracleCache",
    "OracleStats",
    "WorkerPool",
    "Scheduler",
    "default_workers",
    "SQLiteStore",
    "GRIDS",
    "SweepReport",
    "fig5_rpl_grid",
    "run_sweep",
    "table2_grid",
    "wsn_grid",
    "NullTelemetry",
    "TelemetryLogger",
    "iter_events",
    "read_events",
    "tail_events",
    "run_job",
]
