"""Process-pool worker entry point.

Only JSON-compatible dicts cross the process boundary: the parent sends
``JobSpec.to_dict()`` payloads, the worker rebuilds the problem, runs
the exploration with a per-process :class:`OracleCache` (optionally
backed by the sweep's shared SQLite file) and returns
``JobResult.to_dict()``. Keeping the boundary dict-shaped makes the
worker indifferent to pickling details of live model objects and lets
the scheduler journal raw payloads straight into telemetry.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Optional

from repro.runtime.job import JobResult, JobSpec
from repro.runtime.oracle import OracleCache

#: Per-process oracle, keyed by cache path, so one worker process reuses
#: its in-memory layer (and SQLite connection) across the many jobs the
#: pool feeds it.
_PROCESS_ORACLES: Dict[Optional[str], OracleCache] = {}


def _oracle_for(cache_path: Optional[str], use_cache: bool) -> Optional[OracleCache]:
    if not use_cache:
        return None
    if cache_path not in _PROCESS_ORACLES:
        store = None
        if cache_path is not None:
            from repro.runtime.store import SQLiteStore

            store = SQLiteStore(cache_path)
        _PROCESS_ORACLES[cache_path] = OracleCache(store=store)
    return _PROCESS_ORACLES[cache_path]


def run_job(
    spec_dict: Dict[str, Any],
    cache_path: Optional[str] = None,
    use_cache: bool = True,
    run_workers_cap: Optional[int] = None,
) -> Dict[str, Any]:
    """Execute one job and return its ``JobResult.to_dict()`` record.

    Exceptions are captured into an ``error`` record rather than
    propagated — a crashed *query* should fail one job, not poison the
    pool. (Hard crashes of the worker process itself are handled by the
    scheduler's retry logic.)

    ``run_workers_cap`` bounds the job's *in-run* verification pool
    (``ContrArcExplorer(workers=...)``). The pooled scheduler passes 1:
    a sweep worker is already one process of a full pool, so nesting a
    second pool inside it would oversubscribe the machine. The clamp is
    an execution-time override — the spec (and hence its job id) is not
    mutated.
    """
    spec = JobSpec.from_dict(spec_dict)
    overrides = None
    if run_workers_cap is not None:
        requested = spec.engine.get("workers", 1)
        if requested > run_workers_cap:
            overrides = {"workers": run_workers_cap}
    oracle = _oracle_for(cache_path, use_cache)
    before = oracle.stats.to_dict() if oracle is not None else None
    started = time.perf_counter()
    try:
        result = spec.make_explorer(
            oracle=oracle, engine_overrides=overrides
        ).explore()
    except Exception:
        return JobResult(
            spec.job_id,
            spec,
            "error",
            error=traceback.format_exc(limit=20),
            duration=time.perf_counter() - started,
        ).to_dict()
    cache_stats = None
    if oracle is not None:
        after = oracle.stats.to_dict()
        cache_stats = {
            key: after[key] - before[key]
            for key in ("hits", "misses", "stores", "uncacheable")
        }
        queries = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_rate"] = cache_stats["hits"] / queries if queries else 0.0
    return JobResult.from_exploration(
        spec,
        result,
        cache=cache_stats,
        duration=time.perf_counter() - started,
    ).to_dict()
