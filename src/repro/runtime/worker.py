"""Process-pool worker entry point.

Only JSON-compatible dicts cross the process boundary: the parent sends
``JobSpec.to_dict()`` payloads, the worker rebuilds the problem, runs
the exploration with a per-process :class:`OracleCache` (optionally
backed by the sweep's shared SQLite file) and returns
``JobResult.to_dict()``. Keeping the boundary dict-shaped makes the
worker indifferent to pickling details of live model objects and lets
the scheduler journal raw payloads straight into telemetry.

Deadline enforcement is **worker-side**: the scheduler hands
:func:`run_job` its per-job wall-clock budget and the worker bounds
itself twice over —

* *cooperatively*, by clamping the explorer's ``time_limit`` to the
  deadline (the exploration loop checks it between iterations), and
* *hard*, by a POSIX interval alarm set slightly past the deadline, so
  a job wedged inside one long solver call is interrupted too.

Either way the job returns a normal record with status ``timeout`` and
its pool slot is immediately reusable — no abandoned futures silently
oversubscribing the machine. (The scheduler keeps a lenient parent-side
expiry only as a last resort for workers that stop responding
entirely.)
"""

from __future__ import annotations

import atexit
import signal
import sqlite3
import threading
import time
import traceback
import warnings
from typing import Any, Dict, Optional

from repro.runtime import faults
from repro.runtime.job import JobResult, JobSpec
from repro.runtime.oracle import OracleCache

#: Per-process oracle, keyed by cache path, so one worker process reuses
#: its in-memory layer (and SQLite connection) across the many jobs the
#: pool feeds it. Stores are closed at process exit (see
#: :func:`close_process_oracles`) so SQLite WAL/SHM sidecars do not
#: outlive the pool.
_PROCESS_ORACLES: Dict[Optional[str], OracleCache] = {}

#: Cache paths whose SQLite store could not be opened: the oracle
#: degraded to memory-only and every job records the warning.
_DEGRADED_STORES: Dict[str, str] = {}

_ATEXIT_REGISTERED = False


def close_process_oracles() -> None:
    """Close every registered oracle store (idempotent).

    Registered via :mod:`atexit` when the first oracle is built, so a
    worker process that exits normally (pool shutdown) releases its
    SQLite connection — without this, WAL/SHM sidecar files linger
    after the pool is gone.
    """
    while _PROCESS_ORACLES:
        _, oracle = _PROCESS_ORACLES.popitem()
        try:
            oracle.close()
        except Exception:
            pass  # exit path: never let cleanup mask the real outcome


def _oracle_for(cache_path: Optional[str], use_cache: bool) -> Optional[OracleCache]:
    global _ATEXIT_REGISTERED
    if not use_cache:
        return None
    if cache_path not in _PROCESS_ORACLES:
        store = None
        if cache_path is not None:
            from repro.runtime.store import SQLiteStore

            try:
                store = SQLiteStore(cache_path)
            except sqlite3.DatabaseError as error:
                # A corrupt cache DB must not fail every job routed to
                # this worker: degrade to a memory-only oracle and let
                # each job record carry the warning into telemetry.
                _DEGRADED_STORES[cache_path] = repr(error)
                warnings.warn(
                    f"oracle cache {cache_path!r} unusable ({error!r}); "
                    f"continuing with a memory-only oracle",
                    RuntimeWarning,
                    stacklevel=2,
                )
        _PROCESS_ORACLES[cache_path] = OracleCache(store=store)
        if not _ATEXIT_REGISTERED:
            atexit.register(close_process_oracles)
            _ATEXIT_REGISTERED = True
    return _PROCESS_ORACLES[cache_path]


class _HardDeadline(Exception):
    """Raised by the SIGALRM handler when the hard deadline fires."""


class _hard_alarm:
    """Context manager arming a one-shot POSIX alarm.

    Only armed in a main thread on platforms with ``setitimer`` (signal
    handlers cannot be installed elsewhere); otherwise the cooperative
    clamp is the only enforcement — still enough for any job that
    reaches the exploration loop.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        self.seconds = seconds
        self._previous: Any = None
        self.armed = False

    def __enter__(self) -> "_hard_alarm":
        if (
            self.seconds is not None
            and hasattr(signal, "setitimer")
            and threading.current_thread() is threading.main_thread()
        ):
            def _raise(_signum: int, _frame: Any) -> None:
                raise _HardDeadline()

            self._previous = signal.signal(signal.SIGALRM, _raise)
            signal.setitimer(signal.ITIMER_REAL, self.seconds)
            self.armed = True
        return self

    def __exit__(self, *_exc: Any) -> bool:
        if self.armed:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        return False


def hard_deadline_grace(deadline: float) -> float:
    """Headroom the hard alarm grants the cooperative check.

    The cooperative clamp fires between iterations; the alarm only
    needs to catch jobs wedged *inside* one call, so it triggers a
    little after the deadline proper.
    """
    return max(1.0, 0.25 * deadline)


def run_job(
    spec_dict: Dict[str, Any],
    cache_path: Optional[str] = None,
    use_cache: bool = True,
    run_workers_cap: Optional[int] = None,
    deadline: Optional[float] = None,
    portfolio: Optional[bool] = None,
) -> Dict[str, Any]:
    """Execute one job and return its ``JobResult.to_dict()`` record.

    Exceptions are captured into an ``error`` record rather than
    propagated — a crashed *query* should fail one job, not poison the
    pool. (Hard crashes of the worker process itself are handled by the
    scheduler's retry logic.)

    ``run_workers_cap`` bounds the job's *in-run* verification pool
    (``ContrArcExplorer(workers=...)``). The pooled scheduler passes 1:
    a sweep worker is already one process of a full pool, so nesting a
    second pool inside it would oversubscribe the machine. The clamp is
    an execution-time override — the spec (and hence its job id) is not
    mutated.

    ``deadline`` bounds this job's wall clock *from inside the worker*
    (see the module docstring): a job that exceeds it returns a
    ``timeout`` record and frees its slot. Like the workers clamp it is
    an execution-time override and never enters the job id.

    ``portfolio`` turns on the racing solver portfolio for the run (see
    :mod:`repro.solver.portfolio`). It changes only *how fast* queries
    are answered, never the answers, so — like the other overrides — it
    stays out of the job id; with a shared ``cache_path`` the per-class
    win statistics persist to a ``.portfolio.json`` sidecar next to it,
    so routing warms up across jobs and sweeps.
    """
    spec = JobSpec.from_dict(spec_dict)
    overrides: Dict[str, Any] = {}
    if run_workers_cap is not None:
        requested = spec.engine.get("workers", 1)
        if requested > run_workers_cap:
            overrides["workers"] = run_workers_cap
    if portfolio:
        overrides["portfolio"] = True
        if cache_path is not None and use_cache:
            overrides["portfolio_state"] = f"{cache_path}.portfolio.json"
    deadline_binding = False
    if deadline is not None:
        own_limit = spec.engine.get("time_limit")
        if own_limit is None or deadline < own_limit:
            # The sweep deadline is tighter than the job's own budget:
            # clamp the cooperative check and relabel a resulting
            # TIME_LIMIT as a runtime-level timeout. (If the job's own
            # time_limit binds first, TIME_LIMIT stays a legitimate
            # engine outcome, identical to an un-swept run.)
            overrides["time_limit"] = deadline
            deadline_binding = True
    oracle = _oracle_for(cache_path, use_cache)
    before = oracle.stats.to_dict() if oracle is not None else None
    started = time.perf_counter()
    hard_limit = (
        deadline + hard_deadline_grace(deadline) if deadline is not None else None
    )
    try:
        with _hard_alarm(hard_limit):
            faults.maybe_inject("job", spec.label)
            result = spec.make_explorer(
                oracle=oracle, engine_overrides=overrides or None
            ).explore()
    except _HardDeadline:
        return JobResult(
            spec.job_id,
            spec,
            "timeout",
            error=f"worker-side hard deadline ({deadline:g}s budget) exceeded",
            duration=time.perf_counter() - started,
        ).to_dict()
    except Exception:
        return JobResult(
            spec.job_id,
            spec,
            "error",
            error=traceback.format_exc(limit=20),
            duration=time.perf_counter() - started,
        ).to_dict()
    if deadline_binding and result.status.value == "time_limit":
        return JobResult(
            spec.job_id,
            spec,
            "timeout",
            error=f"worker-side deadline ({deadline:g}s budget) exceeded",
            stats=result.stats.to_dict(),
            duration=time.perf_counter() - started,
        ).to_dict()
    cache_stats = None
    if oracle is not None:
        after = oracle.stats.to_dict()
        cache_stats = {
            key: after[key] - before[key]
            for key in ("hits", "misses", "stores", "uncacheable")
        }
        queries = cache_stats["hits"] + cache_stats["misses"]
        cache_stats["hit_rate"] = cache_stats["hits"] / queries if queries else 0.0
        if cache_path in _DEGRADED_STORES:
            cache_stats["warning"] = (
                f"store degraded to memory-only: {_DEGRADED_STORES[cache_path]}"
            )
    return JobResult.from_exploration(
        spec,
        result,
        cache=cache_stats,
        duration=time.perf_counter() - started,
    ).to_dict()
