"""Deterministic fault injection for chaos-testing the batch runtime.

The scheduler's crash handling is only trustworthy if it is exercised:
this module lets tests (and the CI chaos-smoke job) plant faults at the
runtime's two execution seams —

* ``job``  — entry of :func:`repro.runtime.worker.run_job`, i.e. one
  sweep job about to execute in a pool worker (or in-parent);
* ``task`` — entry of :func:`repro.runtime.pool.run_task`, i.e. one
  in-run verification payload about to execute.

A *fault plan* is a JSON list of rules carried in the ``REPRO_FAULTS``
environment variable, so it crosses the process boundary to pool
workers under any start method without touching the picklable payloads:

.. code-block:: json

    [{"seam": "job", "kind": "crash", "match": "epn",
      "after": 1, "times": 2, "dir": "/tmp/fault-counters"}]

Rule fields:

``seam``
    Which seam the rule arms (``job`` or ``task``).
``kind``
    ``crash`` (``os._exit`` — the worker process dies, surfacing as
    ``BrokenProcessPool`` in the parent), ``stall`` (sleep ``seconds``,
    default 3600 — exercises deadlines), or ``exception`` (raise
    :class:`FaultInjected` — exercises retry of submit-level errors).
``match``
    Substring of the seam label (job label / task kind) the rule applies
    to; omit to match everything.
``after`` / ``times``
    Skip the first ``after`` matching hits, then fire at most ``times``
    times (default: fire forever). Hits are counted *across processes*
    through an append-only counter file under ``dir`` — a one-byte
    ``O_APPEND`` write is atomic on POSIX, so concurrent workers agree
    on hit ordinals without locks.
``dir``
    Directory for the rule's counter file; required whenever ``after``
    or ``times`` is set.
``worker_only``
    Default true: destructive faults only fire in processes marked as
    pool workers (see :func:`mark_worker_process`), never in the parent
    — a ``crash`` rule must not take down the scheduler (or pytest).
    Set false to arm a rule for serial/in-parent execution too.

Everything is inert unless ``REPRO_FAULTS`` is set: the seam check is
one cached ``os.environ`` lookup.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Any, Dict, List, Optional

ENV_VAR = "REPRO_FAULTS"

#: Set by :func:`mark_worker_process` in pool-worker processes (the
#: scheduler and WorkerPool install it as the executor initializer).
_IN_WORKER = False

#: Parsed plan cache: ``None`` means "not parsed yet"; a list (possibly
#: empty) means the environment was parsed in this process.
_PLAN: Optional[List[Dict[str, Any]]] = None


class FaultInjected(RuntimeError):
    """Raised by an ``exception``-kind fault rule."""


def mark_worker_process() -> None:
    """Mark this process as a pool worker (executor initializer)."""
    global _IN_WORKER
    _IN_WORKER = True


def reset() -> None:
    """Forget the cached plan (tests change ``REPRO_FAULTS`` mid-process)."""
    global _PLAN
    _PLAN = None


def install_plan(rules: List[Dict[str, Any]]) -> None:
    """Set ``REPRO_FAULTS`` for this process tree (test helper)."""
    os.environ[ENV_VAR] = json.dumps(rules)
    reset()


def uninstall_plan() -> None:
    """Clear ``REPRO_FAULTS`` (test helper)."""
    os.environ.pop(ENV_VAR, None)
    reset()


def _plan() -> List[Dict[str, Any]]:
    global _PLAN
    if _PLAN is None:
        raw = os.environ.get(ENV_VAR, "")
        _PLAN = json.loads(raw) if raw else []
    return _PLAN


def _counter_path(rule: Dict[str, Any]) -> str:
    directory = rule.get("dir")
    if not directory:
        raise ValueError(
            "fault rules with 'after'/'times' need a counter 'dir'"
        )
    digest = hashlib.sha256(
        json.dumps(rule, sort_keys=True).encode("utf-8")
    ).hexdigest()[:16]
    return os.path.join(directory, f"fault-{digest}.count")


def _bump(path: str) -> int:
    """Atomically count one hit; returns this hit's 1-based ordinal.

    One byte appended with ``O_APPEND`` per hit: the file size after the
    write is the global hit count, coherent across processes without a
    lock (a short append either fully precedes or fully follows another).
    """
    fd = os.open(path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
    try:
        os.write(fd, b"x")
        return os.fstat(fd).st_size
    finally:
        os.close(fd)


def maybe_inject(seam: str, label: str) -> None:
    """Fire any armed fault for (seam, label); no-op without a plan."""
    if ENV_VAR not in os.environ:
        return
    for rule in _plan():
        if rule.get("seam", "job") != seam:
            continue
        match = rule.get("match")
        if match and match not in label:
            continue
        if rule.get("worker_only", True) and not _IN_WORKER:
            continue
        after = int(rule.get("after", 0))
        times = rule.get("times")
        if after or times is not None:
            hit = _bump(_counter_path(rule))
            if hit <= after:
                continue
            if times is not None and hit > after + int(times):
                continue
        _fire(rule, seam, label)


def _fire(rule: Dict[str, Any], seam: str, label: str) -> None:
    kind = rule.get("kind", "exception")
    if kind == "crash":
        # A hard worker death: no cleanup, no exception record — the
        # parent sees BrokenProcessPool, exactly like a segfault/OOM.
        os._exit(int(rule.get("exit_code", 13)))
    if kind == "stall":
        time.sleep(float(rule.get("seconds", 3600.0)))
        return
    raise FaultInjected(f"injected fault at seam {seam!r} ({label!r})")
