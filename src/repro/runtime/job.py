"""Job model for schedulable exploration runs.

A :class:`JobSpec` is a pure-data description of one ContrArc
exploration — which case study, which template sizes, which engine
levers, which limits. Specs are what crosses the process boundary to
pool workers (never live templates or contracts: workers rebuild the
problem from the spec), and the canonical JSON form of a spec yields a
deterministic content-addressed job id, so re-running a grid produces
the same ids and telemetry from different runs can be joined.

A :class:`JobResult` is the machine-readable record of one finished (or
failed) job — the same record the ``--json`` CLI flag prints and the
sweep aggregator consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ExplorationError
from repro.runtime.keys import text_key

#: Template-size argument names, per case study, in positional order.
CASE_SIZE_ARGS: Dict[str, Tuple[str, ...]] = {
    "rpl": ("n_a", "n_b"),
    "epn": ("left", "right", "apu"),
    "wsn": ("num_sensors", "num_relays", "tiers"),
}

#: Table II's three certificate scenarios, by name.
SCENARIOS: Dict[str, Dict[str, Any]] = {
    "only-iso": {"use_isomorphism": True, "use_decomposition": False},
    "only-decomp": {
        "use_isomorphism": False,
        "use_decomposition": True,
        "widen_implementations": False,
    },
    "complete": {"use_isomorphism": True, "use_decomposition": True},
}


class JobSpec:
    """Description of one exploration job.

    Parameters
    ----------
    case:
        Case-study name: ``rpl``, ``epn`` or ``wsn``.
    sizes:
        Template-size arguments for the case's ``build_problem`` (see
        :data:`CASE_SIZE_ARGS`); missing entries use builder defaults.
    problem:
        Remaining ``build_problem`` keyword overrides (deadlines,
        demands, budgets).
    engine:
        :class:`~repro.explore.engine.ContrArcExplorer` constructor
        overrides (``use_isomorphism``, ``backend``,
        ``max_iterations``, ``time_limit``, ...).
    label:
        Free-form display label; excluded from the job id.
    """

    __slots__ = ("case", "sizes", "problem", "engine", "label")

    def __init__(
        self,
        case: str,
        sizes: Optional[Dict[str, int]] = None,
        problem: Optional[Dict[str, float]] = None,
        engine: Optional[Dict[str, Any]] = None,
        label: str = "",
    ) -> None:
        if case not in CASE_SIZE_ARGS:
            raise ExplorationError(
                f"unknown case study {case!r}; available: {sorted(CASE_SIZE_ARGS)}"
            )
        self.case = case
        self.sizes = dict(sizes or {})
        self.problem = dict(problem or {})
        self.engine = dict(engine or {})
        unknown = set(self.sizes) - set(CASE_SIZE_ARGS[case])
        if unknown:
            raise ExplorationError(
                f"unknown size argument(s) for {case!r}: {sorted(unknown)}"
            )
        self.label = label or self.default_label()

    # -- identity ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "sizes": dict(self.sizes),
            "problem": dict(self.problem),
            "engine": dict(self.engine),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        return cls(
            data["case"],
            sizes=data.get("sizes"),
            problem=data.get("problem"),
            engine=data.get("engine"),
            label=data.get("label", ""),
        )

    @property
    def job_id(self) -> str:
        """Deterministic content-addressed id (stable across processes)."""
        payload = {
            "case": self.case,
            "sizes": self.sizes,
            "problem": self.problem,
            "engine": self.engine,
        }
        return text_key("job", json.dumps(payload, sort_keys=True))[:16]

    def default_label(self) -> str:
        sizes = ",".join(
            str(self.sizes.get(name, "-")) for name in CASE_SIZE_ARGS[self.case]
        )
        scenario = self.engine.get("scenario", "")
        suffix = f" {scenario}" if scenario else ""
        return f"{self.case}({sizes}){suffix}"

    def __repr__(self) -> str:
        return f"JobSpec({self.label!r}, id={self.job_id})"

    # -- materialization -------------------------------------------------------

    def build_problem(self):
        """Rebuild (mapping_template, specification) from the spec."""
        from repro.casestudies import epn, rpl, wsn

        builders = {
            "rpl": rpl.build_problem,
            "epn": epn.build_problem,
            "wsn": wsn.build_problem,
        }
        kwargs: Dict[str, Any] = dict(self.problem)
        kwargs.update(self.sizes)
        return builders[self.case](**kwargs)

    def engine_kwargs(self) -> Dict[str, Any]:
        """Explorer constructor kwargs, with ``scenario`` expanded."""
        kwargs = dict(self.engine)
        scenario = kwargs.pop("scenario", None)
        if scenario is not None:
            if scenario not in SCENARIOS:
                raise ExplorationError(
                    f"unknown scenario {scenario!r}; "
                    f"available: {sorted(SCENARIOS)}"
                )
            flags = dict(SCENARIOS[scenario])
            flags.update(kwargs)
            kwargs = flags
        return kwargs

    def make_explorer(self, oracle=None, engine_overrides=None, tracer=None):
        """Build a ready-to-run explorer for this job.

        ``engine_overrides`` are applied on top of the spec's engine
        levers *without* entering the job id — the seam the scheduler
        uses to clamp in-run ``workers`` inside its own pool workers
        (nested process pools) while keeping the spec, and therefore
        telemetry joins, untouched. ``tracer`` likewise stays out of the
        id: observability must never change which jobs are cached.
        """
        from repro.explore.engine import ContrArcExplorer

        mapping_template, specification = self.build_problem()
        kwargs = self.engine_kwargs()
        if engine_overrides:
            kwargs.update(engine_overrides)
        return ContrArcExplorer(
            mapping_template, specification, oracle=oracle, tracer=tracer, **kwargs
        )


class JobResult:
    """Machine-readable outcome of one job."""

    __slots__ = (
        "job_id",
        "spec",
        "status",
        "cost",
        "selected",
        "stats",
        "cache",
        "error",
        "attempts",
        "duration",
    )

    def __init__(
        self,
        job_id: str,
        spec: JobSpec,
        status: str,
        cost: Optional[float] = None,
        selected: Optional[Dict[str, str]] = None,
        stats: Optional[Dict[str, Any]] = None,
        cache: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        duration: float = 0.0,
    ) -> None:
        self.job_id = job_id
        self.spec = spec
        self.status = status
        self.cost = cost
        self.selected = dict(selected or {})
        self.stats = dict(stats or {})
        self.cache = dict(cache or {})
        self.error = error
        self.attempts = attempts
        self.duration = duration

    @property
    def ok(self) -> bool:
        return self.status == "optimal"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "status": self.status,
            "cost": self.cost,
            "selected": dict(self.selected),
            "stats": dict(self.stats),
            "cache": dict(self.cache),
            "error": self.error,
            "attempts": self.attempts,
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobResult":
        return cls(
            data["job_id"],
            JobSpec.from_dict(data["spec"]),
            data["status"],
            cost=data.get("cost"),
            selected=data.get("selected"),
            stats=data.get("stats"),
            cache=data.get("cache"),
            error=data.get("error"),
            attempts=data.get("attempts", 1),
            duration=data.get("duration", 0.0),
        )

    @classmethod
    def from_exploration(
        cls,
        spec: JobSpec,
        result,
        cache: Optional[Dict[str, Any]] = None,
        attempts: int = 1,
        duration: float = 0.0,
    ) -> "JobResult":
        """Build the record from an :class:`ExplorationResult`."""
        selected = {}
        if result.architecture is not None:
            selected = {
                name: impl.name
                for name, impl in sorted(result.architecture.selected_impls.items())
            }
        return cls(
            spec.job_id,
            spec,
            result.status.value,
            cost=result.cost,
            selected=selected,
            stats=result.stats.to_dict(),
            cache=cache,
            attempts=attempts,
            duration=duration,
        )

    def __repr__(self) -> str:
        return (
            f"JobResult({self.spec.label!r}, {self.status}, "
            f"cost={self.cost}, {self.duration:.2f}s)"
        )
