"""Structured run telemetry as JSON Lines.

One event per line, each a flat-ish JSON object with at least ``event``
and ``ts`` (Unix seconds). The scheduler emits lifecycle events
(``sweep_start``, ``job_start``, ``job_end``, ``job_retry``,
``job_timeout``, ``sweep_end``); ``job_end`` events embed the full
:class:`~repro.runtime.job.JobResult` record, including the
per-iteration MILP/refinement/certificate timings from
:meth:`ExplorationStats.to_dict` and the job's oracle cache counters, so
`reporting.tables` (or any JSONL consumer) can rebuild every sweep
artifact offline.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, IO, Iterator, List, Optional, Union


class TelemetryLogger:
    """Append-only JSONL event writer.

    Accepts a filesystem path (opened in append mode, so several
    sequential runs can share one journal) or any writable text stream.

    Durability: every event is flushed as it is written — a crashed or
    killed run's journal is complete up to the last emitted event — and
    :meth:`close` is idempotent and exception-safe (a flush failure
    still releases an owned stream; a closed logger ignores further
    ``close`` calls, so ``with``-blocks and explicit teardown compose).
    """

    def __init__(self, sink: Union[str, IO[str]]) -> None:
        if isinstance(sink, str):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = sink
        else:
            self._stream = sink
            self._owns_stream = False
            self.path = None
        self.events_emitted = 0
        self._closed = False

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Write one event (flushed immediately); returns the record."""
        if self._closed:
            raise ValueError("emit() on a closed TelemetryLogger")
        record = {"event": event, "ts": time.time()}
        record.update(fields)
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        self.events_emitted += 1
        return record

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._stream.flush()
        except ValueError:
            pass  # underlying stream already closed by its owner
        finally:
            if self._owns_stream:
                self._stream.close()

    def __enter__(self) -> "TelemetryLogger":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class NullTelemetry:
    """No-op stand-in used when no journal is requested."""

    events_emitted = 0
    path = None

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


def read_events(path: str, event: Optional[str] = None) -> List[Dict[str, Any]]:
    """Load a JSONL journal, optionally filtered to one event type."""
    return [
        record
        for record in iter_events(path)
        if event is None or record.get("event") == event
    ]


def iter_events(path: str) -> Iterator[Dict[str, Any]]:
    """Stream a JSONL journal one decoded record at a time."""
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                yield json.loads(line)
