"""Structured run telemetry as JSON Lines.

One event per line, each a flat-ish JSON object with at least ``event``
and ``ts`` (Unix seconds). The scheduler emits lifecycle events
(``sweep_start``, ``job_start``, ``job_end``, ``job_retry``,
``job_timeout``, ``sweep_end``); ``job_end`` events embed the full
:class:`~repro.runtime.job.JobResult` record, including the
per-iteration MILP/refinement/certificate timings from
:meth:`ExplorationStats.to_dict` and the job's oracle cache counters, so
`reporting.tables` (or any JSONL consumer) can rebuild every sweep
artifact offline.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from typing import Any, Dict, IO, Iterator, List, Optional, Union


def _torn_tail(path: str) -> bool:
    """True if ``path`` exists, is non-empty and lacks a final newline."""
    try:
        with open(path, "rb") as probe:
            probe.seek(-1, os.SEEK_END)
            return probe.read(1) != b"\n"
    except (OSError, ValueError):
        return False  # missing or empty file: nothing to repair


class TruncatedJournalWarning(UserWarning):
    """A journal line could not be decoded and was skipped.

    A SIGKILLed run can leave a half-written final line in its journal;
    readers skip it (with this warning) so crashed-run ledgers stay
    loadable — pass ``strict=True`` to get the raising behavior back.
    """


class TelemetryLogger:
    """Append-only JSONL event writer.

    Accepts a filesystem path (opened in append mode, so several
    sequential runs can share one journal) or any writable text stream.

    Durability: every event is flushed as it is written — a crashed or
    killed run's journal is complete up to the last emitted event — and
    :meth:`close` is idempotent and exception-safe (a flush failure
    still releases an owned stream; a closed logger ignores further
    ``close`` calls, so ``with``-blocks and explicit teardown compose).

    Thread safety: ``emit`` and ``close`` serialize on one lock, so
    ``close`` is a *drain-then-seal* barrier — any emit already in
    flight on another thread completes (and is flushed) before the
    stream is sealed, and no emit can interleave with the close-time
    flush and hit the underlying stream mid-teardown. An emit that
    arrives *after* the seal still raises ``ValueError``: that is a
    lifecycle bug in the caller, not a race. Long-lived processes (the
    ``repro serve`` job server) rely on this barrier when shutting down
    while scheduler threads are still journaling.

    ``fsync=True`` additionally fsyncs the file after every emitted
    line (and after the torn-tail repair newline below), pinning each
    record to disk before the writer moves on — a SIGKILLed server can
    at worst tear the *final* line of a journal, never an interior one,
    which is exactly the case the tolerant readers repair.
    """

    def __init__(self, sink: Union[str, IO[str]], fsync: bool = False) -> None:
        self._lock = threading.Lock()
        self._fsync = fsync
        if isinstance(sink, str):
            self._stream: IO[str] = open(sink, "a", encoding="utf-8")
            self._owns_stream = True
            self.path: Optional[str] = sink
            if _torn_tail(sink):
                # The previous writer was killed mid-write: start a
                # fresh line so the first appended event is not fused
                # into (and lost with) the truncated one.
                self._stream.write("\n")
                self._stream.flush()
                self._sync()
        else:
            self._stream = sink
            self._owns_stream = False
            self.path = None
        self.events_emitted = 0
        self._closed = False

    def _sync(self) -> None:
        """Pin buffered bytes to disk (no-op for non-file sinks)."""
        if not self._fsync:
            return
        try:
            os.fsync(self._stream.fileno())
        except (OSError, ValueError):
            pass  # StringIO and friends have no fileno; nothing to pin

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Write one event (flushed immediately); returns the record."""
        with self._lock:
            if self._closed:
                raise ValueError("emit() on a closed TelemetryLogger")
            record = {"event": event, "ts": time.time()}
            record.update(fields)
            self._stream.write(json.dumps(record, sort_keys=True) + "\n")
            self._stream.flush()
            self._sync()
            self.events_emitted += 1
            return record

    def close(self) -> None:
        # Taking the emit lock *is* the drain: an in-flight emit holds
        # it until its record is written and flushed, so sealing cannot
        # interleave with a write. Everything after the seal is
        # exception-safe teardown.
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._stream.flush()
                self._sync()
            except ValueError:
                pass  # underlying stream already closed by its owner
            finally:
                if self._owns_stream:
                    self._stream.close()

    def __enter__(self) -> "TelemetryLogger":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


class NullTelemetry:
    """No-op stand-in used when no journal is requested."""

    events_emitted = 0
    path = None

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        return {}

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


def read_events(
    path: str, event: Optional[str] = None, strict: bool = False
) -> List[Dict[str, Any]]:
    """Load a JSONL journal, optionally filtered to one event type."""
    return [
        record
        for record in iter_events(path, strict=strict)
        if event is None or record.get("event") == event
    ]


def tail_events(
    path: str, offset: int = 0
) -> "tuple[List[Dict[str, Any]], int]":
    """Incrementally read a live journal from a byte offset.

    Returns ``(new_records, new_offset)``. Only *complete* lines (ending
    in a newline) are consumed: a line the writer is mid-way through
    appending is left for the next call, so a tailer never sees a torn
    record — the polling analogue of :func:`iter_events`'s tolerance.
    Complete-but-undecodable lines (the repaired tail of a previous
    killed run) are skipped silently. A missing file yields no records
    and leaves the offset untouched, so tailing may begin before the
    writer's first emit.
    """
    try:
        with open(path, "rb") as stream:
            stream.seek(offset)
            chunk = stream.read()
    except OSError:
        return [], offset
    cut = chunk.rfind(b"\n")
    if cut < 0:
        return [], offset
    complete, consumed = chunk[: cut + 1], offset + cut + 1
    records: List[Dict[str, Any]] = []
    for line in complete.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError):
            continue  # torn line from a previous writer's death
    return records, consumed


def iter_events(path: str, strict: bool = False) -> Iterator[Dict[str, Any]]:
    """Stream a JSONL journal one decoded record at a time.

    A journal left behind by a killed run typically ends in a truncated
    line (the writer died mid-``write``). By default undecodable lines
    are skipped with a :class:`TruncatedJournalWarning` so such journals
    remain readable — the ``--resume`` ledger reader depends on this.
    ``strict=True`` restores the raising behavior for consumers that
    require a well-formed journal.
    """
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if strict:
                    raise
                warnings.warn(
                    f"{path}:{number}: skipping undecodable journal line "
                    f"(truncated by a crashed run?)",
                    TruncatedJournalWarning,
                    stacklevel=2,
                )
