"""Graphviz DOT export for templates and selected architectures.

Renders the Fig. 4-style pictures: component nodes as circles coloured
by type, implementation nodes as boxes, mapping edges dashed.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.digraph import DiGraph, NodeId

_PALETTE = [
    "#e8f0fe",
    "#fde8e8",
    "#e8fdf0",
    "#fdf6e8",
    "#f0e8fd",
    "#e8fdfd",
    "#fde8f6",
    "#f4f4f4",
]


def _quote(value: object) -> str:
    text = str(value).replace('"', '\\"')
    return f'"{text}"'


def to_dot(
    graph: DiGraph,
    title: Optional[str] = None,
    rankdir: str = "LR",
    highlight_labels: Optional[Dict[str, str]] = None,
) -> str:
    """Serialize ``graph`` as a Graphviz DOT document.

    Node shape is taken from the node attribute ``shape`` when present
    (implementations use ``box``); fill colour is assigned per label
    unless overridden via ``highlight_labels``.
    """
    labels = sorted({graph.label(n) or "" for n in graph.nodes()})
    colours = {
        label: (highlight_labels or {}).get(label, _PALETTE[i % len(_PALETTE)])
        for i, label in enumerate(labels)
    }
    lines = [f"digraph {_quote(title or graph.name or 'architecture')} {{"]
    lines.append(f"  rankdir={rankdir};")
    lines.append("  node [style=filled, fontname=Helvetica];")
    for node in sorted(graph.nodes(), key=str):
        label = graph.label(node) or ""
        attrs = graph.node_attrs(node)
        shape = attrs.get("shape", "ellipse")
        display = attrs.get("display", str(node))
        lines.append(
            f"  {_quote(node)} [label={_quote(display)}, shape={shape}, "
            f"fillcolor={_quote(colours[label])}];"
        )
    for src, dst in sorted(graph.edges(), key=str):
        attrs = graph.edge_attrs(src, dst)
        style = attrs.get("style", "solid")
        lines.append(f"  {_quote(src)} -> {_quote(dst)} [style={style}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(graph: DiGraph, path: str, **kwargs) -> None:
    """Write the DOT serialization of ``graph`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(graph, **kwargs))
