"""Subgraph isomorphism enumeration (VF2 style).

The certificate generator (Algorithm 2 of the paper) needs *all*
embeddings of the detached invalid architecture ``G`` inside the
detached template ``T``. Per Definition 4 and the surrounding text
("``V' ⊆ V`` and ``E' ⊆ E``"), an embedding is an injective map that
preserves node labels (component types) and maps every pattern edge to a
template edge — a *sub-monomorphism*, not necessarily induced. An
induced mode is also provided.

The implementation follows the VF2 recursion: grow a partial mapping one
candidate pair at a time, pruning pairs that violate label equality,
adjacency consistency with the already-mapped core, or degree bounds.
This replaces DotMotif in the original tool chain; tests cross-check the
enumeration against networkx's DiGraphMatcher.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.graph.digraph import DiGraph, NodeId

Embedding = Dict[NodeId, NodeId]
LabelMatcher = Callable[[Optional[str], Optional[str]], bool]


def _default_label_match(pattern_label: Optional[str], host_label: Optional[str]) -> bool:
    return pattern_label == host_label


class SubgraphMatcher:
    """Enumerates embeddings of ``pattern`` into ``host``."""

    def __init__(
        self,
        host: DiGraph,
        pattern: DiGraph,
        induced: bool = False,
        label_match: LabelMatcher = _default_label_match,
    ) -> None:
        self.host = host
        self.pattern = pattern
        self.induced = induced
        self.label_match = label_match
        self._order = self._matching_order()

    # -- public API ------------------------------------------------------------

    def find_all(self, limit: int = 0) -> List[Embedding]:
        """All embeddings (pattern node -> host node); optional cap."""
        result: List[Embedding] = []
        for embedding in self.iter_embeddings():
            result.append(embedding)
            if limit and len(result) >= limit:
                break
        return result

    def exists(self) -> bool:
        """True iff at least one embedding exists."""
        return next(self.iter_embeddings(), None) is not None

    def iter_embeddings(self) -> Iterator[Embedding]:
        if self.pattern.num_nodes == 0:
            yield {}
            return
        if self.pattern.num_nodes > self.host.num_nodes:
            return
        yield from self._extend({}, set())

    # -- matching order -----------------------------------------------------------

    def _matching_order(self) -> List[NodeId]:
        """Order pattern nodes so each (after the first of its component)
        is adjacent to an earlier node — keeps the core connected and the
        candidate sets small."""
        remaining = set(self.pattern.nodes())
        order: List[NodeId] = []
        placed: Set[NodeId] = set()

        def degree(node: NodeId) -> int:
            return self.pattern.in_degree(node) + self.pattern.out_degree(node)

        while remaining:
            frontier = [
                n
                for n in remaining
                if (self.pattern.successors(n) | self.pattern.predecessors(n))
                & placed
            ]
            if frontier:
                nxt = max(frontier, key=lambda n: (degree(n), str(n)))
            else:
                nxt = max(remaining, key=lambda n: (degree(n), str(n)))
            order.append(nxt)
            placed.add(nxt)
            remaining.discard(nxt)
        return order

    # -- recursion -------------------------------------------------------------------

    def _extend(
        self, mapping: Embedding, used_hosts: Set[NodeId]
    ) -> Iterator[Embedding]:
        if len(mapping) == self.pattern.num_nodes:
            yield dict(mapping)
            return
        pattern_node = self._order[len(mapping)]
        for host_node in self._candidates(pattern_node, mapping, used_hosts):
            mapping[pattern_node] = host_node
            used_hosts.add(host_node)
            yield from self._extend(mapping, used_hosts)
            used_hosts.discard(host_node)
            del mapping[pattern_node]

    def _candidates(
        self, pattern_node: NodeId, mapping: Embedding, used_hosts: Set[NodeId]
    ) -> List[NodeId]:
        """Host nodes that could legally extend the mapping."""
        # If the pattern node touches mapped neighbours, restrict the pool
        # to host-adjacent nodes of their images.
        pool: Optional[Set[NodeId]] = None
        for pred in self.pattern.predecessors(pattern_node):
            if pred in mapping:
                adjacent = self.host.successors(mapping[pred])
                pool = adjacent if pool is None else pool & adjacent
        for succ in self.pattern.successors(pattern_node):
            if succ in mapping:
                adjacent = self.host.predecessors(mapping[succ])
                pool = adjacent if pool is None else pool & adjacent
        if pool is None:
            pool = set(self.host.nodes())

        label = self.pattern.label(pattern_node)
        out: List[NodeId] = []
        for host_node in sorted(pool, key=str):
            if host_node in used_hosts:
                continue
            if not self.label_match(label, self.host.label(host_node)):
                continue
            if self.host.in_degree(host_node) < self.pattern.in_degree(pattern_node):
                continue
            if self.host.out_degree(host_node) < self.pattern.out_degree(pattern_node):
                continue
            if self._consistent(pattern_node, host_node, mapping):
                out.append(host_node)
        return out

    def _consistent(
        self, pattern_node: NodeId, host_node: NodeId, mapping: Embedding
    ) -> bool:
        """Check adjacency of the new pair against the mapped core."""
        for pred in self.pattern.predecessors(pattern_node):
            if pred in mapping and not self.host.has_edge(mapping[pred], host_node):
                return False
        for succ in self.pattern.successors(pattern_node):
            if succ in mapping and not self.host.has_edge(host_node, mapping[succ]):
                return False
        if self.induced:
            for p_node, h_node in mapping.items():
                if not self.pattern.has_edge(p_node, pattern_node) and self.host.has_edge(
                    h_node, host_node
                ):
                    return False
                if not self.pattern.has_edge(pattern_node, p_node) and self.host.has_edge(
                    host_node, h_node
                ):
                    return False
        return True


def find_embeddings(
    host: DiGraph,
    pattern: DiGraph,
    induced: bool = False,
    limit: int = 0,
    label_match: LabelMatcher = _default_label_match,
) -> List[Embedding]:
    """All label-preserving embeddings of ``pattern`` into ``host``."""
    return SubgraphMatcher(host, pattern, induced, label_match).find_all(limit)


def embedding_edge_image(
    pattern: DiGraph, embedding: Embedding
) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """Host edges used by an embedding."""
    return frozenset(
        (embedding[src], embedding[dst]) for src, dst in pattern.edges()
    )


def deduplicate_embeddings(
    pattern: DiGraph, embeddings: List[Embedding]
) -> List[Embedding]:
    """Drop embeddings whose node- and edge-image coincide with an earlier
    one (automorphic variants produce identical MILP cuts)."""
    seen: Set[Tuple[FrozenSet[NodeId], FrozenSet[Tuple[NodeId, NodeId]]]] = set()
    unique: List[Embedding] = []
    for embedding in embeddings:
        key = (
            frozenset(embedding.values()),
            embedding_edge_image(pattern, embedding),
        )
        if key not in seen:
            seen.add(key)
            unique.append(embedding)
    return unique


def are_isomorphic(a: DiGraph, b: DiGraph) -> bool:
    """Full graph isomorphism (Definition 4) via two-sided embedding."""
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    return SubgraphMatcher(b, a, induced=True).exists()
