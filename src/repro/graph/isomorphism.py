"""Subgraph isomorphism enumeration (VF2 style, bitset engine).

The certificate generator (Algorithm 2 of the paper) needs *all*
embeddings of the detached invalid architecture ``G`` inside the
detached template ``T``. Per Definition 4 and the surrounding text
("``V' ⊆ V`` and ``E' ⊆ E``"), an embedding is an injective map that
preserves node labels (component types) and maps every pattern edge to a
template edge — a *sub-monomorphism*, not necessarily induced. An
induced mode is also provided.

The engine keeps the VF2 recursion (grow a partial mapping one candidate
pair at a time) but compiles both graphs to integer bitsets first:

* host nodes get dense indices (in ``str`` order, which preserves the
  enumeration order of the previous set-based implementation) and
  successor/predecessor adjacency bitmasks;
* every pattern node gets a precomputed *candidate domain* mask — hosts
  passing the label and degree prefilters — so per-level filtering is a
  handful of AND operations instead of set algebra and per-node checks;
* adjacency consistency with the mapped core (and the non-adjacency
  checks of induced mode) compile to mask intersections resolved level
  by level.

Optionally, callers may declare *symmetry classes* — groups of pattern
nodes they consider interchangeable (same downstream effect, e.g. equal
widened implementation sets in certificate generation). The matcher
verifies each group is structurally interchangeable (equal label, equal
neighborhoods outside the group, no intra-group edges — i.e. swapping
two members is a pattern automorphism) and then enumerates only the
representative with ascending host indices per class. The skipped
embeddings are exactly the automorphic variants that
:func:`deduplicate_embeddings` would drop, so deduplicated output is
unchanged — enumeration just never expands the redundant subtrees.

This replaces DotMotif in the original tool chain; tests cross-check the
enumeration against networkx's DiGraphMatcher.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.graph.digraph import DiGraph, NodeId

Embedding = Dict[NodeId, NodeId]
LabelMatcher = Callable[[Optional[str], Optional[str]], bool]

# Constraint kinds compiled per recursion level (see _compile).
_REQ_IN = 0   # pattern edge earlier->current: host image must be a successor
_REQ_OUT = 1  # pattern edge current->earlier: host image must be a predecessor
_NOT_IN = 2   # induced mode: absent pattern edge forbids the host edge
_NOT_OUT = 3


def _default_label_match(pattern_label: Optional[str], host_label: Optional[str]) -> bool:
    return pattern_label == host_label


class SubgraphMatcher:
    """Enumerates embeddings of ``pattern`` into ``host``."""

    def __init__(
        self,
        host: DiGraph,
        pattern: DiGraph,
        induced: bool = False,
        label_match: LabelMatcher = _default_label_match,
        symmetry_classes: Optional[Iterable[Iterable[NodeId]]] = None,
    ) -> None:
        self.host = host
        self.pattern = pattern
        self.induced = induced
        self.label_match = label_match
        self.symmetry_classes = symmetry_classes
        self._order = self._matching_order()
        self._compiled = False

    # -- public API ------------------------------------------------------------

    def find_all(
        self, limit: int = 0, root_mask: Optional[int] = None
    ) -> List[Embedding]:
        """All embeddings (pattern node -> host node); optional cap.

        ``root_mask`` restricts the *first* pattern node (in matching
        order) to the host indices whose bits are set — the partitioning
        hook of the parallel enumeration path. Because enumeration walks
        root candidates in ascending host index, concatenating the
        results of a partition of the root domain (in ascending-chunk
        order) reproduces the unpartitioned enumeration order exactly.
        """
        result: List[Embedding] = []
        for embedding in self.iter_embeddings(root_mask=root_mask):
            result.append(embedding)
            if limit and len(result) >= limit:
                break
        return result

    def exists(self) -> bool:
        """True iff at least one embedding exists."""
        return next(self.iter_embeddings(), None) is not None

    def iter_embeddings(
        self, root_mask: Optional[int] = None
    ) -> Iterator[Embedding]:
        if self.pattern.num_nodes == 0:
            if root_mask is None:
                yield {}
            return
        if self.pattern.num_nodes > self.host.num_nodes:
            return
        self._compile()
        if not all(self._domains):
            return
        images = [0] * len(self._order)
        if root_mask is None:
            yield from self._extend(0, images, 0)
            return
        yield from self._extend(0, images, 0, root_mask)

    def root_partitions(self, parts: int) -> List[int]:
        """Split the first pattern node's candidate domain into at most
        ``parts`` contiguous bitmasks (ascending host index, balanced).

        The masks are disjoint, their union is the full root domain, and
        enumerating each in order is equivalent to one serial pass —
        the contract the parallel embedding search relies on. Returns an
        empty list when the pattern is trivially empty, larger than the
        host, or has an empty domain (no embeddings either way).
        """
        if parts < 1:
            raise ValueError("parts must be at least 1")
        if (
            self.pattern.num_nodes == 0
            or self.pattern.num_nodes > self.host.num_nodes
        ):
            return []
        self._compile()
        if not all(self._domains):
            return []
        bits: List[int] = []
        domain = self._domains[0]
        while domain:
            low = domain & -domain
            domain ^= low
            bits.append(low)
        masks: List[int] = []
        chunk = max(1, -(-len(bits) // parts))
        for start in range(0, len(bits), chunk):
            mask = 0
            for bit in bits[start : start + chunk]:
                mask |= bit
            masks.append(mask)
        return masks

    # -- matching order -----------------------------------------------------------

    def _matching_order(self) -> List[NodeId]:
        """Order pattern nodes so each (after the first of its component)
        is adjacent to an earlier node — keeps the core connected and the
        candidate sets small."""
        remaining = set(self.pattern.nodes())
        order: List[NodeId] = []
        placed: Set[NodeId] = set()

        def degree(node: NodeId) -> int:
            return self.pattern.in_degree(node) + self.pattern.out_degree(node)

        while remaining:
            frontier = [
                n
                for n in remaining
                if (self.pattern.successors(n) | self.pattern.predecessors(n))
                & placed
            ]
            if frontier:
                nxt = max(frontier, key=lambda n: (degree(n), str(n)))
            else:
                nxt = max(remaining, key=lambda n: (degree(n), str(n)))
            order.append(nxt)
            placed.add(nxt)
            remaining.discard(nxt)
        return order

    # -- compilation -----------------------------------------------------------

    def _compile(self) -> None:
        """Precompute host bitmasks, per-node domains, level constraints."""
        if self._compiled:
            return
        self._compiled = True
        host, pattern = self.host, self.pattern
        hosts = sorted(host.nodes(), key=str)
        index = {h: i for i, h in enumerate(hosts)}
        self._hosts = hosts

        succ = [0] * len(hosts)
        pred = [0] * len(hosts)
        for i, h in enumerate(hosts):
            for s in host.successors(h):
                succ[i] |= 1 << index[s]
            for p in host.predecessors(h):
                pred[i] |= 1 << index[p]
        self._succ, self._pred = succ, pred
        full = (1 << len(hosts)) - 1
        self._full = full

        # Candidate domains: label + degree prefilter, resolved once.
        domains: List[int] = []
        for p in self._order:
            label = pattern.label(p)
            need_in = pattern.in_degree(p)
            need_out = pattern.out_degree(p)
            mask = 0
            for i, h in enumerate(hosts):
                if not self.label_match(label, host.label(h)):
                    continue
                if host.in_degree(h) < need_in or host.out_degree(h) < need_out:
                    continue
                mask |= 1 << i
            domains.append(mask)
        self._domains = domains

        # Per level: adjacency (and induced non-adjacency) constraints
        # against every earlier level.
        level_of = {p: lvl for lvl, p in enumerate(self._order)}
        constraints: List[List[Tuple[int, int]]] = []
        for lvl, p in enumerate(self._order):
            cons: List[Tuple[int, int]] = []
            for earlier in range(lvl):
                q = self._order[earlier]
                if pattern.has_edge(q, p):
                    cons.append((earlier, _REQ_IN))
                elif self.induced:
                    cons.append((earlier, _NOT_IN))
                if pattern.has_edge(p, q):
                    cons.append((earlier, _REQ_OUT))
                elif self.induced:
                    cons.append((earlier, _NOT_OUT))
            constraints.append(cons)
        self._constraints = constraints

        # Symmetry breaking: for each verified class, chain members in
        # matching order and force ascending host indices.
        sym_prev = [-1] * len(self._order)
        for members in self._verified_classes():
            levels = sorted(level_of[m] for m in members)
            for a, b in zip(levels, levels[1:]):
                sym_prev[b] = a
        self._sym_prev = sym_prev

    def _verified_classes(self) -> List[List[NodeId]]:
        """Caller-declared classes restricted to provable automorphisms.

        A group survives only where members share a label, have no edges
        to other group members, and have identical successor/predecessor
        sets outside the group — then any transposition of two members
        is a pattern automorphism and pruning is lossless.
        """
        if not self.symmetry_classes:
            return []
        verified: List[List[NodeId]] = []
        for group in self.symmetry_classes:
            members = [n for n in group if self.pattern.has_node(n)]
            if len(members) < 2:
                continue
            group_set = set(members)
            by_signature: Dict[object, List[NodeId]] = {}
            for n in members:
                succs = self.pattern.successors(n)
                preds = self.pattern.predecessors(n)
                if succs & group_set or preds & group_set:
                    continue  # intra-group edge: not interchangeable
                signature = (
                    self.pattern.label(n),
                    frozenset(succs),
                    frozenset(preds),
                )
                by_signature.setdefault(signature, []).append(n)
            for shared in by_signature.values():
                if len(shared) > 1:
                    verified.append(shared)
        return verified

    # -- recursion -------------------------------------------------------------------

    def _extend(
        self,
        level: int,
        images: List[int],
        used: int,
        root_mask: Optional[int] = None,
    ) -> Iterator[Embedding]:
        if level == len(self._order):
            hosts = self._hosts
            yield {
                p: hosts[images[lvl]] for lvl, p in enumerate(self._order)
            }
            return
        cand = self._domains[level] & ~used
        if root_mask is not None and level == 0:
            cand &= root_mask
        succ, pred, full = self._succ, self._pred, self._full
        for earlier, kind in self._constraints[level]:
            img = images[earlier]
            if kind == _REQ_IN:
                cand &= succ[img]
            elif kind == _REQ_OUT:
                cand &= pred[img]
            elif kind == _NOT_IN:
                cand &= full ^ succ[img]
            else:
                cand &= full ^ pred[img]
            if not cand:
                return
        prev = self._sym_prev[level]
        if prev >= 0:
            # Only host indices above the class predecessor's image.
            cand &= -(1 << (images[prev] + 1))
        while cand:
            low = cand & -cand
            cand ^= low
            images[level] = low.bit_length() - 1
            yield from self._extend(level + 1, images, used | low)


def find_embeddings(
    host: DiGraph,
    pattern: DiGraph,
    induced: bool = False,
    limit: int = 0,
    label_match: LabelMatcher = _default_label_match,
    symmetry_classes: Optional[Iterable[Iterable[NodeId]]] = None,
    root_mask: Optional[int] = None,
) -> List[Embedding]:
    """All label-preserving embeddings of ``pattern`` into ``host``."""
    return SubgraphMatcher(
        host, pattern, induced, label_match, symmetry_classes
    ).find_all(limit, root_mask=root_mask)


def embedding_edge_image(
    pattern: DiGraph, embedding: Embedding
) -> FrozenSet[Tuple[NodeId, NodeId]]:
    """Host edges used by an embedding."""
    return frozenset(
        (embedding[src], embedding[dst]) for src, dst in pattern.edges()
    )


def deduplicate_embeddings(
    pattern: DiGraph, embeddings: List[Embedding]
) -> List[Embedding]:
    """Drop embeddings whose node- and edge-image coincide with an earlier
    one (automorphic variants produce identical MILP cuts)."""
    seen: Set[Tuple[FrozenSet[NodeId], FrozenSet[Tuple[NodeId, NodeId]]]] = set()
    unique: List[Embedding] = []
    for embedding in embeddings:
        key = (
            frozenset(embedding.values()),
            embedding_edge_image(pattern, embedding),
        )
        if key not in seen:
            seen.add(key)
            unique.append(embedding)
    return unique


def are_isomorphic(a: DiGraph, b: DiGraph) -> bool:
    """Full graph isomorphism (Definition 4) via two-sided embedding."""
    if a.num_nodes != b.num_nodes or a.num_edges != b.num_edges:
        return False
    return SubgraphMatcher(b, a, induced=True).exists()
