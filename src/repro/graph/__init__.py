"""Graph substrate: typed digraph, path search, subgraph isomorphism."""

from repro.graph.digraph import DiGraph, Edge, NodeId
from repro.graph.paths import (
    Path,
    all_source_sink_paths,
    path_edges,
    path_graph,
    simple_paths,
)
from repro.graph.isomorphism import (
    Embedding,
    SubgraphMatcher,
    are_isomorphic,
    deduplicate_embeddings,
    embedding_edge_image,
    find_embeddings,
)
from repro.graph.dot import to_dot, write_dot
from repro.graph.matchers import MATCHERS, EmbeddingCache, get_matcher

__all__ = [
    "DiGraph",
    "Edge",
    "NodeId",
    "Path",
    "all_source_sink_paths",
    "path_edges",
    "path_graph",
    "simple_paths",
    "Embedding",
    "SubgraphMatcher",
    "are_isomorphic",
    "deduplicate_embeddings",
    "embedding_edge_image",
    "find_embeddings",
    "to_dot",
    "write_dot",
    "MATCHERS",
    "EmbeddingCache",
    "get_matcher",
]
