"""Path enumeration (Definition 3 of the paper).

Algorithm 1 needs every simple path from a source partition to a sink
partition of a candidate architecture. Candidate architectures are small
(tens of nodes), so a straightforward DFS enumeration is appropriate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from repro.graph.digraph import DiGraph, NodeId

Path = Tuple[NodeId, ...]


def simple_paths(
    graph: DiGraph, source: NodeId, target: NodeId, max_length: int = 0
) -> Iterator[Path]:
    """Yield all simple paths from ``source`` to ``target``.

    ``max_length`` bounds the number of *edges* per path (0 = unbounded).
    """
    if source == target:
        yield (source,)
        return
    path: List[NodeId] = [source]
    on_path: Set[NodeId] = {source}
    stack: List[Iterator[NodeId]] = [iter(sorted(graph.successors(source), key=str))]
    while stack:
        children = stack[-1]
        child = next(children, None)
        if child is None:
            stack.pop()
            on_path.discard(path.pop())
            continue
        if max_length and len(path) > max_length:
            continue
        if child == target:
            yield tuple(path) + (target,)
            continue
        if child in on_path:
            continue
        path.append(child)
        on_path.add(child)
        stack.append(iter(sorted(graph.successors(child), key=str)))


def all_source_sink_paths(
    graph: DiGraph,
    sources: Iterable[NodeId],
    sinks: Iterable[NodeId],
    max_length: int = 0,
) -> List[Path]:
    """All simple paths from any source to any sink, in deterministic order."""
    sink_list = list(sinks)
    paths: List[Path] = []
    for source in sorted(sources, key=str):
        for sink in sorted(sink_list, key=str):
            if source == sink:
                continue
            paths.extend(simple_paths(graph, source, sink, max_length=max_length))
    return paths


def path_edges(path: Sequence[NodeId]) -> List[Tuple[NodeId, NodeId]]:
    """Edge list of a node-sequence path."""
    return [(path[i], path[i + 1]) for i in range(len(path) - 1)]


def path_graph(graph: DiGraph, path: Sequence[NodeId]) -> DiGraph:
    """Extract the sub-architecture induced by a path (nodes + path edges)."""
    return graph.edge_subgraph(path_edges(path))
