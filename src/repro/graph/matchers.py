"""Pluggable subgraph-isomorphism backends.

The certificate generator only needs one operation — enumerate all
label-preserving sub-monomorphisms of a pattern into a host — so the
matcher is pluggable the same way MILP backends are. Two backends ship:

* ``native``   — the VF2-style matcher in :mod:`repro.graph.isomorphism`
  (the default; typically several times faster on the path-shaped
  patterns certificates produce);
* ``networkx`` — an adapter over :class:`networkx.algorithms.isomorphism.
  DiGraphMatcher`, standing in for DotMotif in the paper's tool chain
  and doubling as an independent cross-check.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph, NodeId
from repro.graph.isomorphism import Embedding, SubgraphMatcher, find_embeddings

MatcherFn = Callable[..., List[Embedding]]

#: Optional hint accepted by matcher backends: groups of pattern nodes
#: the *caller* treats as interchangeable. Backends may use it to prune
#: automorphic enumeration (the native engine verifies the groups are
#: real automorphisms first); backends without such support ignore it.
SymmetryClasses = Optional[Iterable[Iterable[NodeId]]]


def native_matcher(
    host: DiGraph,
    pattern: DiGraph,
    limit: int = 0,
    symmetry_classes: SymmetryClasses = None,
) -> List[Embedding]:
    """The built-in bitset VF2 enumerator."""
    return find_embeddings(
        host, pattern, limit=limit, symmetry_classes=symmetry_classes
    )


def networkx_matcher(
    host: DiGraph,
    pattern: DiGraph,
    limit: int = 0,
    symmetry_classes: SymmetryClasses = None,
) -> List[Embedding]:
    """Enumerate embeddings with networkx's DiGraphMatcher."""
    import networkx as nx

    def convert(graph: DiGraph) -> "nx.DiGraph":
        out = nx.DiGraph()
        for node in graph.nodes():
            out.add_node(node, label=graph.label(node))
        out.add_edges_from(graph.edges())
        return out

    if pattern.num_nodes == 0:
        return [{}]
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        convert(host),
        convert(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    embeddings: List[Embedding] = []
    for mapping in matcher.subgraph_monomorphisms_iter():
        # networkx maps host -> pattern; invert to pattern -> host.
        embeddings.append({p: h for h, p in mapping.items()})
        if limit and len(embeddings) >= limit:
            break
    return embeddings


MATCHERS: Dict[str, MatcherFn] = {
    "native": native_matcher,
    "networkx": networkx_matcher,
}


def parallel_native_embeddings(
    pool,
    host: DiGraph,
    pattern: DiGraph,
    limit: int = 0,
    symmetry_classes: SymmetryClasses = None,
) -> List[Embedding]:
    """Root-partitioned native enumeration over a
    :class:`repro.runtime.pool.WorkerPool`.

    The first pattern node's candidate domain is split into one
    contiguous bitmask per pool worker; each worker enumerates its
    partition independently and the parent concatenates the results in
    partition order. Since the serial engine walks root candidates in
    ascending host index, the concatenation equals the serial
    enumeration *exactly* (order included), and a ``limit`` applied to
    the concatenation keeps the serial prefix semantics.
    """
    matcher = SubgraphMatcher(host, pattern, symmetry_classes=symmetry_classes)
    masks = matcher.root_partitions(pool.workers)
    if len(masks) < 2:
        return matcher.find_all(limit)
    symmetry = (
        [list(group) for group in symmetry_classes]
        if symmetry_classes is not None
        else None
    )
    payloads = [
        {
            "host": host,
            "pattern": pattern,
            "limit": limit,
            "symmetry_classes": symmetry,
            "root_mask": mask,
            # Partition index = stable span seq for the worker-side
            # embedding_partition span (see repro.obs); the pool strips
            # this key before task dispatch, traced or not.
            "_obs": {"seq": index},
        }
        for index, mask in enumerate(masks)
    ]
    embeddings: List[Embedding] = []
    for chunk in pool.map("embeddings", payloads):
        embeddings.extend(chunk)
        if limit and len(embeddings) >= limit:
            break
    return embeddings[:limit] if limit else embeddings


class EmbeddingCache:
    """Per-run memo for deduplicated embedding enumerations.

    The exploration loop re-derives the same detached fragment across
    many iterations (the host template never changes within a run), so
    :func:`repro.explore.certificates.generate_cuts` can skip repeated
    enumeration entirely. Keys cover everything the result depends on:
    matcher backend, limit, the pattern's full structure (nodes with
    labels, edges) and the symmetry colors supplied by the caller. The
    host is deliberately *not* part of the key — one cache serves one
    exploration run over one template; create a fresh cache per run.
    """

    __slots__ = ("_store", "hits", "misses")

    def __init__(self) -> None:
        self._store: Dict[Hashable, List[Embedding]] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(
        pattern: DiGraph,
        matcher: str,
        limit: int,
        colors: Optional[Dict[NodeId, Hashable]] = None,
    ) -> Hashable:
        nodes: Tuple = tuple(
            sorted(
                (
                    (node, pattern.label(node), colors.get(node) if colors else None)
                    for node in pattern.nodes()
                ),
                key=str,
            )
        )
        edges: Tuple = tuple(sorted(pattern.edges(), key=str))
        return (matcher, limit, nodes, edges)

    def get(self, key: Hashable) -> Optional[List[Embedding]]:
        found = self._store.get(key)
        if found is not None:
            self.hits += 1
            # Copy the mappings: callers treat embeddings as their own.
            return [dict(embedding) for embedding in found]
        self.misses += 1
        return None

    def put(self, key: Hashable, embeddings: List[Embedding]) -> None:
        self._store[key] = [dict(embedding) for embedding in embeddings]


def get_matcher(name: str) -> MatcherFn:
    """Resolve a registered matcher backend by name."""
    try:
        return MATCHERS[name]
    except KeyError:
        raise ReproError(
            f"unknown isomorphism matcher {name!r}; available: "
            f"{sorted(MATCHERS)}"
        )
