"""Pluggable subgraph-isomorphism backends.

The certificate generator only needs one operation — enumerate all
label-preserving sub-monomorphisms of a pattern into a host — so the
matcher is pluggable the same way MILP backends are. Two backends ship:

* ``native``   — the VF2-style matcher in :mod:`repro.graph.isomorphism`
  (the default; typically several times faster on the path-shaped
  patterns certificates produce);
* ``networkx`` — an adapter over :class:`networkx.algorithms.isomorphism.
  DiGraphMatcher`, standing in for DotMotif in the paper's tool chain
  and doubling as an independent cross-check.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.isomorphism import Embedding, find_embeddings

MatcherFn = Callable[[DiGraph, DiGraph, int], List[Embedding]]


def native_matcher(host: DiGraph, pattern: DiGraph, limit: int = 0) -> List[Embedding]:
    """The built-in VF2 enumerator."""
    return find_embeddings(host, pattern, limit=limit)


def networkx_matcher(
    host: DiGraph, pattern: DiGraph, limit: int = 0
) -> List[Embedding]:
    """Enumerate embeddings with networkx's DiGraphMatcher."""
    import networkx as nx

    def convert(graph: DiGraph) -> "nx.DiGraph":
        out = nx.DiGraph()
        for node in graph.nodes():
            out.add_node(node, label=graph.label(node))
        out.add_edges_from(graph.edges())
        return out

    if pattern.num_nodes == 0:
        return [{}]
    matcher = nx.algorithms.isomorphism.DiGraphMatcher(
        convert(host),
        convert(pattern),
        node_match=lambda a, b: a["label"] == b["label"],
    )
    embeddings: List[Embedding] = []
    for mapping in matcher.subgraph_monomorphisms_iter():
        # networkx maps host -> pattern; invert to pattern -> host.
        embeddings.append({p: h for h, p in mapping.items()})
        if limit and len(embeddings) >= limit:
            break
    return embeddings


MATCHERS: Dict[str, MatcherFn] = {
    "native": native_matcher,
    "networkx": networkx_matcher,
}


def get_matcher(name: str) -> MatcherFn:
    """Resolve a registered matcher backend by name."""
    try:
        return MATCHERS[name]
    except KeyError:
        raise ReproError(
            f"unknown isomorphism matcher {name!r}; available: "
            f"{sorted(MATCHERS)}"
        )
