"""A small typed directed graph.

This is the graph substrate for templates, candidate architectures, and
isomorphism patterns. Nodes are arbitrary hashable identifiers carrying
a *label* (the component type in the paper's sense) plus free-form
attributes; edges are ordered pairs with optional attributes.

We implement our own structure rather than relying on networkx so that
the isomorphism engine, path search, and the exploration algorithms are
self-contained; tests cross-check behaviour against networkx.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.exceptions import ArchitectureError

NodeId = Hashable
Edge = Tuple[NodeId, NodeId]


class DiGraph:
    """Directed graph with labelled nodes and attribute dictionaries."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._labels: Dict[NodeId, Optional[str]] = {}
        self._node_attrs: Dict[NodeId, Dict[str, Any]] = {}
        self._succ: Dict[NodeId, Set[NodeId]] = {}
        self._pred: Dict[NodeId, Set[NodeId]] = {}
        self._edge_attrs: Dict[Edge, Dict[str, Any]] = {}

    # -- nodes ----------------------------------------------------------------

    def add_node(self, node: NodeId, label: Optional[str] = None, **attrs: Any) -> None:
        if node in self._labels:
            if label is not None:
                self._labels[node] = label
            self._node_attrs[node].update(attrs)
            return
        self._labels[node] = label
        self._node_attrs[node] = dict(attrs)
        self._succ[node] = set()
        self._pred[node] = set()

    def remove_node(self, node: NodeId) -> None:
        self._require_node(node)
        for succ in list(self._succ[node]):
            self.remove_edge(node, succ)
        for pred in list(self._pred[node]):
            self.remove_edge(pred, node)
        del self._labels[node]
        del self._node_attrs[node]
        del self._succ[node]
        del self._pred[node]

    def has_node(self, node: NodeId) -> bool:
        return node in self._labels

    def label(self, node: NodeId) -> Optional[str]:
        self._require_node(node)
        return self._labels[node]

    def node_attrs(self, node: NodeId) -> Dict[str, Any]:
        self._require_node(node)
        return self._node_attrs[node]

    def nodes(self) -> List[NodeId]:
        return list(self._labels)

    def nodes_with_label(self, label: str) -> List[NodeId]:
        return [n for n, lab in self._labels.items() if lab == label]

    @property
    def num_nodes(self) -> int:
        return len(self._labels)

    # -- edges ----------------------------------------------------------------

    def add_edge(self, src: NodeId, dst: NodeId, **attrs: Any) -> None:
        self._require_node(src)
        self._require_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)
        existing = self._edge_attrs.setdefault((src, dst), {})
        existing.update(attrs)

    def remove_edge(self, src: NodeId, dst: NodeId) -> None:
        if not self.has_edge(src, dst):
            raise ArchitectureError(f"edge ({src!r}, {dst!r}) not in graph")
        self._succ[src].discard(dst)
        self._pred[dst].discard(src)
        self._edge_attrs.pop((src, dst), None)

    def has_edge(self, src: NodeId, dst: NodeId) -> bool:
        return src in self._succ and dst in self._succ[src]

    def edge_attrs(self, src: NodeId, dst: NodeId) -> Dict[str, Any]:
        if not self.has_edge(src, dst):
            raise ArchitectureError(f"edge ({src!r}, {dst!r}) not in graph")
        return self._edge_attrs[(src, dst)]

    def edges(self) -> List[Edge]:
        return list(self._edge_attrs)

    @property
    def num_edges(self) -> int:
        return len(self._edge_attrs)

    # -- adjacency ----------------------------------------------------------------

    def successors(self, node: NodeId) -> Set[NodeId]:
        self._require_node(node)
        return set(self._succ[node])

    def predecessors(self, node: NodeId) -> Set[NodeId]:
        self._require_node(node)
        return set(self._pred[node])

    def out_degree(self, node: NodeId) -> int:
        self._require_node(node)
        return len(self._succ[node])

    def in_degree(self, node: NodeId) -> int:
        self._require_node(node)
        return len(self._pred[node])

    def sources(self) -> List[NodeId]:
        """Nodes with no incoming edges."""
        return [n for n in self._labels if not self._pred[n]]

    def sinks(self) -> List[NodeId]:
        """Nodes with no outgoing edges."""
        return [n for n in self._labels if not self._succ[n]]

    # -- derived graphs ---------------------------------------------------------------

    def copy(self) -> "DiGraph":
        clone = DiGraph(self.name)
        for node, label in self._labels.items():
            clone.add_node(node, label, **self._node_attrs[node])
        for (src, dst), attrs in self._edge_attrs.items():
            clone.add_edge(src, dst, **attrs)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "DiGraph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._labels)
        if missing:
            raise ArchitectureError(f"nodes not in graph: {sorted(map(repr, missing))}")
        sub = DiGraph(self.name)
        for node in keep:
            sub.add_node(node, self._labels[node], **self._node_attrs[node])
        for (src, dst), attrs in self._edge_attrs.items():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, **attrs)
        return sub

    def edge_subgraph(self, edges: Iterable[Edge]) -> "DiGraph":
        """Subgraph containing exactly ``edges`` and their endpoints."""
        sub = DiGraph(self.name)
        for src, dst in edges:
            if not self.has_edge(src, dst):
                raise ArchitectureError(f"edge ({src!r}, {dst!r}) not in graph")
            for node in (src, dst):
                if not sub.has_node(node):
                    sub.add_node(node, self._labels[node], **self._node_attrs[node])
            sub.add_edge(src, dst, **self._edge_attrs[(src, dst)])
        return sub

    # -- traversal ----------------------------------------------------------------------

    def topological_order(self) -> List[NodeId]:
        """Kahn's algorithm; raises on cycles."""
        in_deg = {n: len(self._pred[n]) for n in self._labels}
        frontier = [n for n, d in in_deg.items() if d == 0]
        order: List[NodeId] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for succ in self._succ[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._labels):
            raise ArchitectureError("graph has a cycle; no topological order")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except ArchitectureError:
            return False
        return True

    def reachable_from(self, node: NodeId) -> Set[NodeId]:
        """All nodes reachable from ``node`` (including itself)."""
        self._require_node(node)
        seen = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            for succ in self._succ[current]:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    # -- misc -----------------------------------------------------------------------------

    def _require_node(self, node: NodeId) -> None:
        if node not in self._labels:
            raise ArchitectureError(f"node {node!r} not in graph {self.name!r}")

    def __contains__(self, node: NodeId) -> bool:
        return node in self._labels

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return (
            f"DiGraph({self.name!r}, nodes={self.num_nodes}, edges={self.num_edges})"
        )
