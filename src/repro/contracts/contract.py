"""Assume/guarantee contracts over linear-arithmetic predicates.

A contract ``C = (V, A, G)`` captures assumptions ``A`` on the
environment and guarantees ``G`` offered under those assumptions
(Section II-A of the paper; Benveniste et al. for the full theory). The
behaviour sets are predicates of the constraint language in
:mod:`repro.expr`; the variable support is derived from the formulas.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Optional

from repro.exceptions import ContractError
from repro.expr.constraints import Formula, Or, TRUE
from repro.expr.terms import Number, Var
from repro.expr.transform import negate, substitute
from repro.solver.feasibility import DEFAULT_BACKEND, check_sat


class Contract:
    """An assume/guarantee contract with formula-valued A and G."""

    __slots__ = ("name", "assumptions", "guarantees", "_saturated")

    def __init__(
        self,
        name: str,
        assumptions: Formula,
        guarantees: Formula,
        _saturated: bool = False,
    ) -> None:
        if not isinstance(assumptions, Formula) or not isinstance(guarantees, Formula):
            raise ContractError(
                "assumptions and guarantees must be Formula instances"
            )
        self.name = name
        self.assumptions = assumptions
        self.guarantees = guarantees
        self._saturated = _saturated

    # -- structure ---------------------------------------------------------

    def variables(self) -> FrozenSet[Var]:
        """Variable support of the contract."""
        return self.assumptions.variables() | self.guarantees.variables()

    @property
    def is_saturated(self) -> bool:
        return self._saturated

    def saturate(self) -> "Contract":
        """Return the saturated contract ``(A, G or not A)``.

        Saturation makes the guarantee explicit about off-assumption
        behaviours and is required before composition and refinement,
        which are defined on saturated forms.
        """
        if self._saturated:
            return self
        if isinstance(self.assumptions, type(TRUE)) and getattr(
            self.assumptions, "value", None
        ) is True:
            return Contract(self.name, self.assumptions, self.guarantees, True)
        saturated_g = Or(self.guarantees, negate(self.assumptions))
        return Contract(self.name, self.assumptions, saturated_g, True)

    def substitute(self, assignment: Mapping[Var, Number]) -> "Contract":
        """Fix a subset of variables in both A and G.

        Used to specialize component contracts to a selected candidate
        (edge and mapping variables pinned to the MILP solution).
        """
        return Contract(
            self.name,
            substitute(self.assumptions, assignment),
            substitute(self.guarantees, assignment),
            self._saturated,
        )

    # -- semantic checks -------------------------------------------------------

    def is_consistent(self, backend: str = DEFAULT_BACKEND) -> bool:
        """A contract is consistent iff it admits an implementation,
        i.e. ``G or not A`` is satisfiable."""
        return bool(check_sat(self.saturate().guarantees, backend=backend))

    def is_compatible(self, backend: str = DEFAULT_BACKEND) -> bool:
        """A contract is compatible iff it admits an environment,
        i.e. ``A`` is satisfiable."""
        return bool(check_sat(self.assumptions, backend=backend))

    # -- misc ----------------------------------------------------------------------

    def renamed(self, name: str) -> "Contract":
        return Contract(name, self.assumptions, self.guarantees, self._saturated)

    def __repr__(self) -> str:
        marker = "*" if self._saturated else ""
        return f"Contract({self.name!r}{marker}, |V|={len(self.variables())})"


def contract(
    name: str,
    assumptions: Optional[Formula] = None,
    guarantees: Optional[Formula] = None,
) -> Contract:
    """Convenience constructor with TRUE defaults."""
    return Contract(name, assumptions or TRUE, guarantees or TRUE)
