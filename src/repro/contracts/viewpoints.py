"""Requirement viewpoints (timing, flow/power, interconnection, ...).

A viewpoint groups the contracts of one requirement dimension and
carries the metadata the exploration engine needs:

* whether the system-level requirement is *path-specific* (checked per
  source-to-sink path, Algorithm 1 lines 4-9) or global;
* which implementation attribute the viewpoint judges and in which
  direction it degrades, used by ``ImplementationSearch`` (Algorithm 2)
  to widen an invalid implementation choice to every choice that is at
  least as bad.
"""

from __future__ import annotations

import enum
from typing import Optional


class AttributeDirection(enum.Enum):
    """How an implementation attribute relates to requirement violation."""

    #: Larger attribute values are worse (e.g. latency vs a deadline).
    HIGHER_IS_WORSE = "higher_is_worse"
    #: Smaller attribute values are worse (e.g. throughput vs demand).
    LOWER_IS_WORSE = "lower_is_worse"

    def at_least_as_bad(self, candidate: float, reference: float) -> bool:
        """True iff ``candidate`` is at least as bad as ``reference``."""
        if self is AttributeDirection.HIGHER_IS_WORSE:
            return candidate >= reference
        return candidate <= reference


class Viewpoint:
    """A named requirement dimension."""

    __slots__ = ("name", "path_specific", "attribute", "direction")

    def __init__(
        self,
        name: str,
        path_specific: bool = False,
        attribute: Optional[str] = None,
        direction: Optional[AttributeDirection] = None,
    ) -> None:
        if (attribute is None) != (direction is None):
            raise ValueError(
                "attribute and direction must be given together (or neither)"
            )
        self.name = name
        self.path_specific = path_specific
        self.attribute = attribute
        self.direction = direction

    @property
    def supports_widening(self) -> bool:
        """Whether Algorithm 2's implementation widening applies."""
        return self.attribute is not None

    def __eq__(self, other) -> bool:
        return isinstance(other, Viewpoint) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Viewpoint", self.name))

    def __repr__(self) -> str:
        kind = "path" if self.path_specific else "global"
        return f"Viewpoint({self.name!r}, {kind})"


#: The viewpoints used by the paper's case studies.
TIMING = Viewpoint(
    "timing",
    path_specific=True,
    attribute="latency",
    direction=AttributeDirection.HIGHER_IS_WORSE,
)
FLOW = Viewpoint(
    "flow",
    path_specific=False,
    attribute="throughput",
    direction=AttributeDirection.LOWER_IS_WORSE,
)
POWER = Viewpoint(
    "power",
    path_specific=False,
    attribute="throughput",
    direction=AttributeDirection.LOWER_IS_WORSE,
)
