"""Contract refinement checking (Problem 3 of the paper).

``C refines C'`` (written ``C <= C'``) iff C accepts at least the
environments of C' (weaker assumptions) and promises at least the
guarantees of C' (stronger guarantees):

* assumptions query:  ``A' and not A``   must be UNSAT;
* guarantees query:   ``G and not G'``   must be UNSAT  (saturated G's).

Each query is discharged through the MILP feasibility oracle — this is
the role Gurobi plays in the paper's tool chain. A failed query returns
the satisfying witness, which the certificate generator uses only as
diagnostic payload (the cut itself is structural).

Note: the paper's prose writes the first query as ``A_c and not A_s``;
that contradicts the "weaker assumptions" definition it states two
paragraphs earlier, so we implement the standard direction (see
DESIGN.md section 1).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.contracts.contract import Contract
from repro.expr.constraints import And, Formula
from repro.expr.terms import Var
from repro.expr.transform import negate
from repro.solver.feasibility import DEFAULT_BACKEND, check_sat


class RefinementFailure(enum.Enum):
    """Which half of the refinement check failed."""

    ASSUMPTIONS = "assumptions"
    GUARANTEES = "guarantees"


class RefinementResult:
    """Outcome of a refinement check, with a witness on failure."""

    __slots__ = ("holds", "failure", "witness")

    def __init__(
        self,
        holds: bool,
        failure: Optional[RefinementFailure] = None,
        witness: Optional[Dict[Var, float]] = None,
    ) -> None:
        self.holds = holds
        self.failure = failure
        self.witness = dict(witness or {})

    def __bool__(self) -> bool:
        return self.holds

    def __repr__(self) -> str:
        if self.holds:
            return "RefinementResult(holds)"
        return f"RefinementResult(fails: {self.failure.value})"


def refinement_queries(
    concrete: Contract,
    abstract: Contract,
    check_assumptions: bool = True,
    saturate_concrete: bool = True,
) -> List[Tuple[RefinementFailure, Formula]]:
    """The ordered satisfiability queries deciding ``concrete <= abstract``.

    Refinement holds iff *every* returned formula is UNSAT; the first
    SAT one (in order) names the failing half and its witness.
    :func:`check_refinement` evaluates this plan lazily (stopping at the
    first SAT query); the parallel verification layer evaluates it
    eagerly and recombines — both observe the same plan, so cache keys
    and outcomes agree bit for bit.
    """
    concrete_sat = concrete if not saturate_concrete else concrete.saturate()
    abstract_sat = abstract.saturate()
    queries: List[Tuple[RefinementFailure, Formula]] = []
    if check_assumptions:
        queries.append(
            (
                RefinementFailure.ASSUMPTIONS,
                And(abstract_sat.assumptions, negate(concrete_sat.assumptions)),
            )
        )
    queries.append(
        (
            RefinementFailure.GUARANTEES,
            And(concrete_sat.guarantees, negate(abstract_sat.guarantees)),
        )
    )
    return queries


def check_refinement(
    concrete: Contract,
    abstract: Contract,
    backend: str = DEFAULT_BACKEND,
    check_assumptions: bool = True,
    saturate_concrete: bool = True,
    oracle=None,
) -> RefinementResult:
    """Check ``concrete <= abstract``.

    ``check_assumptions=False`` skips the assumptions query — the common
    case in architecture exploration, where the system contract's
    assumptions are guaranteed by construction of the candidate (all
    environment constraints are already in the MILP).

    ``saturate_concrete=False`` uses the concrete contract's *raw*
    guarantee formulas instead of the saturated ``G or not A`` — the
    formulation the paper's refinement queries use (``phi_G`` directly).
    Saturation lets a component escape its own guarantee by violating
    its own assumption, which makes system obligations like minimum
    delivered flow underivable from any composition; the raw form is the
    appropriate check when every component assumption is already
    enforced by the candidate-selection MILP.

    ``oracle`` memoizes the two UNSAT queries (see
    :func:`repro.solver.feasibility.check_sat`); repeated refinement
    checks over the same contract pair are served from cache.
    """
    for failure, query in refinement_queries(
        concrete,
        abstract,
        check_assumptions=check_assumptions,
        saturate_concrete=saturate_concrete,
    ):
        sat = check_sat(query, backend=backend, oracle=oracle)
        if sat:
            return RefinementResult(False, failure, sat.assignment)
    return RefinementResult(True)


def refines(
    concrete: Contract, abstract: Contract, backend: str = DEFAULT_BACKEND
) -> bool:
    """Boolean form of :func:`check_refinement`."""
    return bool(check_refinement(concrete, abstract, backend=backend))
