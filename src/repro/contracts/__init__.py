"""Assume/guarantee contract algebra."""

from repro.contracts.contract import Contract, contract
from repro.contracts.operations import compose, conjoin
from repro.contracts.quotient import quotient
from repro.contracts.refinement import (
    RefinementFailure,
    RefinementResult,
    check_refinement,
    refines,
)
from repro.contracts.viewpoints import (
    FLOW,
    POWER,
    TIMING,
    AttributeDirection,
    Viewpoint,
)

__all__ = [
    "Contract",
    "contract",
    "compose",
    "conjoin",
    "quotient",
    "RefinementFailure",
    "RefinementResult",
    "check_refinement",
    "refines",
    "FLOW",
    "POWER",
    "TIMING",
    "AttributeDirection",
    "Viewpoint",
]
