"""Contract composition and conjunction.

Both operations are defined on saturated contracts (Benveniste et al.):

* composition ``C1 (x) C2``:  ``G = G1 and G2``,
  ``A = (A1 and A2) or not G`` — the composite assumes whatever lets
  both parts assume their environments, discharging mutual assumptions
  through the guarantees;
* conjunction ``C1 /\\ C2`` (viewpoint merge): ``A = A1 or A2``,
  ``G = G1 and G2``.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.exceptions import ContractError
from repro.contracts.contract import Contract
from repro.expr.constraints import Or, conjunction, disjunction
from repro.expr.transform import negate


def compose(
    contracts: Iterable[Contract], name: str = "", saturate: bool = True
) -> Contract:
    """Compose contracts (the paper's ``(x)`` operator, n-ary).

    ``saturate=False`` combines the *raw* formulas — ``A = and(A_i)``,
    ``G = and(G_i)`` — the form the paper's refinement queries consume
    (see :func:`repro.contracts.refinement.check_refinement`).
    """
    operands: List[Contract] = [
        c.saturate() if saturate else c for c in contracts
    ]
    if not operands:
        raise ContractError("compose() needs at least one contract")
    if len(operands) == 1:
        only = operands[0]
        return only.renamed(name) if name else only
    guarantees = conjunction(c.guarantees for c in operands)
    joint_assumptions = conjunction(c.assumptions for c in operands)
    label = name or "(" + " (x) ".join(c.name for c in operands) + ")"
    if not saturate:
        return Contract(label, joint_assumptions, guarantees)
    assumptions = Or(joint_assumptions, negate(guarantees))
    return Contract(label, assumptions, guarantees, _saturated=True)


def conjoin(contracts: Iterable[Contract], name: str = "") -> Contract:
    """Conjoin contracts across viewpoints (the paper's ``/\\`` operator)."""
    saturated: List[Contract] = [c.saturate() for c in contracts]
    if not saturated:
        raise ContractError("conjoin() needs at least one contract")
    if len(saturated) == 1:
        only = saturated[0]
        return only.renamed(name) if name else only
    assumptions = disjunction(c.assumptions for c in saturated)
    guarantees = conjunction(c.guarantees for c in saturated)
    label = name or "(" + " /\\ ".join(c.name for c in saturated) + ")"
    return Contract(label, assumptions, guarantees, _saturated=True)
