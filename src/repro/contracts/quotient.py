"""Contract quotient — specification of the missing component.

Given a system-level contract ``C_s`` and the contract ``C_1`` of an
already-fixed part, the *quotient* ``C_s / C_1`` is the weakest
specification a missing part must satisfy so the composition meets the
system contract (Incer et al.; the algebraic completion of the
composition operator used throughout the paper):

    A_q = A_s and G_1
    G_q = (A_s and G_1 -> G_s) and (G_s and G_q ... )   — in saturated
          form simply  G_s or not (A_s and G_1),
    plus the obligation to re-establish C_1's assumptions:
          A_1 or not A_s.

This implementation uses the standard closed form on saturated
contracts:

    C_s / C_1 = (A_s ∧ G_1,  (G_s ∧ A_1) ∨ ¬(A_s ∧ G_1))

which satisfies the universal property: for any contract C,
``C_1 (x) C <= C_s``  iff  ``C <= C_s / C_1``.

In the exploration setting the quotient is how compositional stages are
justified formally: the *Comb B* abstraction of the RPL case study is a
hand-written strengthening of ``C_s / C_lineA``.
"""

from __future__ import annotations

from repro.contracts.contract import Contract
from repro.expr.constraints import And, Or
from repro.expr.transform import negate


def quotient(system: Contract, part: Contract, name: str = "") -> Contract:
    """The weakest contract completing ``part`` to meet ``system``."""
    system_sat = system.saturate()
    part_sat = part.saturate()
    assumptions = And(system_sat.assumptions, part_sat.guarantees)
    obligations = And(system_sat.guarantees, part_sat.assumptions)
    guarantees = Or(obligations, negate(assumptions))
    label = name or f"({system.name} / {part.name})"
    return Contract(label, assumptions, guarantees, _saturated=True)
