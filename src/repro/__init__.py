"""ContrArc — contract-based CPS architecture exploration.

Reproduction of "Efficient Exploration of Cyber-Physical System
Architectures Using Contracts and Subgraph Isomorphism" (DATE 2024).

Public entry points:

* :mod:`repro.arch`      — templates, libraries, candidates;
* :mod:`repro.spec`      — contract generators (interconnection, flow, timing);
* :mod:`repro.contracts` — the A/G contract algebra;
* :mod:`repro.explore`   — the ContrArc engine and baselines;
* :mod:`repro.casestudies` — the paper's RPL and EPN generators.
"""

__version__ = "1.0.0"

from repro.arch import (
    CandidateArchitecture,
    Component,
    ComponentType,
    Implementation,
    Library,
    MappingTemplate,
    Template,
)
from repro.contracts import Contract, Viewpoint, compose, conjoin, refines
from repro.explore import ContrArcExplorer, ExplorationResult, ExplorationStatus
from repro.spec import FlowSpec, InterconnectionSpec, Specification, TimingSpec

__all__ = [
    "__version__",
    "CandidateArchitecture",
    "Component",
    "ComponentType",
    "Implementation",
    "Library",
    "MappingTemplate",
    "Template",
    "Contract",
    "Viewpoint",
    "compose",
    "conjoin",
    "refines",
    "ContrArcExplorer",
    "ExplorationResult",
    "ExplorationStatus",
    "FlowSpec",
    "InterconnectionSpec",
    "Specification",
    "TimingSpec",
]
