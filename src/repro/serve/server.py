"""The ``repro serve`` job server.

One asyncio event loop serves HTTP; one background dispatcher thread
(bridged with ``loop.run_in_executor`` futures) feeds the existing
:class:`~repro.runtime.scheduler.Scheduler`. The split keeps the HTTP
side non-blocking — submit/poll/cancel/stream never wait on a solver —
while the batch runtime stays exactly the code path the one-shot CLI
uses, so a job submitted over HTTP produces the same content-addressed
id and the same canonical record as ``python -m repro <case> --json``.

Lifecycle of a submission:

1. ``POST /jobs`` validates the spec, registers it in the
   :class:`~repro.serve.queue.JobQueue` (content-addressed dedup) and
   journals ``job_submitted`` — fsynced — to the client namespace's
   ledger *before* the 202 leaves the server: an acknowledged job
   survives a SIGKILL.
2. The dispatcher claims a priority-ordered batch and runs it through
   the scheduler; ``job_start``/``job_end`` telemetry routes back into
   the namespace journal and mirrors into the job table.
3. ``GET /jobs/<id>/stream`` tails that journal with the
   torn-line-tolerant reader and relays the job's events as SSE.

On boot the server replays every namespace ledger: terminal records
re-enter the job table (dedup returns them instantly), and jobs that
were submitted but never finished are re-enqueued — restart-and-resume
with no duplicate ``job_end`` records.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ExplorationError
from repro.runtime.job import JobResult, JobSpec
from repro.runtime.scheduler import Scheduler, default_workers
from repro.runtime.sweep import SweepReport
from repro.runtime.telemetry import tail_events
from repro.serve import protocol
from repro.serve.queue import JobEntry, JobQueue, QueueFull, TERMINAL_STATES
from repro.serve.session import RoutingTelemetry, SessionStore

DEFAULT_NAMESPACE = "default"


class JobServer:
    """Exploration-as-a-service over the batch runtime."""

    def __init__(
        self,
        data_dir: str,
        host: str = "127.0.0.1",
        port: int = 8765,
        workers: Optional[int] = None,
        max_queue: int = 1024,
        serial: bool = False,
        cache_path: Optional[str] = None,
        use_cache: bool = True,
        timeout: Optional[float] = None,
        retries: int = 1,
        portfolio: bool = False,
        batch_limit: Optional[int] = None,
        stream_poll: float = 0.05,
        stream_keepalive: float = 15.0,
        dispatch: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = workers or default_workers()
        self.stream_poll = stream_poll
        #: Idle seconds between SSE keepalive comments on /stream.
        self.stream_keepalive = stream_keepalive
        #: Jobs claimed per scheduler batch. Small enough that a burst
        #: of high-priority submissions jumps the line at the next
        #: batch boundary, large enough to keep the pool saturated.
        self.batch_limit = batch_limit or max(1, self.workers * 2)
        self._dispatch_enabled = dispatch
        self.queue = JobQueue(max_queue=max_queue)
        self.store = SessionStore(data_dir)
        self.telemetry = RoutingTelemetry(
            self.store, owner_of=self._owner_of, on_event=self._on_event
        )
        self.scheduler = Scheduler(
            max_workers=self.workers,
            serial=serial,
            telemetry=self.telemetry,
            cache_path=cache_path,
            use_cache=use_cache,
            timeout=timeout,
            retries=retries,
            portfolio=portfolio,
        )
        #: Called with the server once the socket is bound (CLI banner).
        self.on_ready = None
        self.resumed_jobs = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = threading.Event()
        #: The single dispatcher thread, owned so shutdown semantics
        #: (drain the in-flight batch, then exit) are ours to define.
        self._dispatch_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )
        self._thread: Optional[threading.Thread] = None

    # -- job table plumbing ----------------------------------------------------

    def _owner_of(self, job_id: str) -> Optional[str]:
        entry = self.queue.get(job_id)
        return entry.namespace if entry is not None else None

    def _on_event(self, event: str, fields: Dict[str, Any]) -> None:
        """Mirror scheduler telemetry into the in-memory job table."""
        job_id = fields.get("job_id")
        if not job_id:
            return
        if event == "job_start":
            self.queue.mark_running(job_id)
        elif event == "job_end":
            self.queue.finish(job_id, dict(fields))

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        namespace: str = DEFAULT_NAMESPACE,
        priority: int = 0,
        resumed: bool = False,
    ) -> Tuple[JobEntry, bool]:
        """Register a spec; journal the submission before acknowledging."""
        ns = self.store.namespace(namespace)
        entry, created = self.queue.submit(spec, namespace, priority)
        if created:
            # A stale cancel (from a previous submission of the same
            # spec) must not kill the fresh one.
            self.scheduler.uncancel(spec.job_id)
            ns.emit(
                "job_submitted",
                job_id=spec.job_id,
                spec=spec.to_dict(),
                priority=priority,
                namespace=namespace,
                resumed=resumed,
            )
        return entry, created

    def cancel(self, job_id: str) -> Optional[str]:
        """Best-effort cancel; returns the action taken (None: unknown)."""
        action = self.queue.cancel(job_id)
        if action == "cancelled":
            # Still queued server-side: the scheduler never saw it, so
            # this is the job's only terminal path — journal its single
            # ``job_end`` here.
            entry = self.queue.get(job_id)
            record = JobResult(
                job_id, entry.spec, "cancelled", attempts=0
            ).to_dict()
            self.store.namespace(entry.namespace).emit("job_end", **record)
            self.queue.finish(job_id, record)
        elif action == "requested":
            # In the dispatcher's hands: the scheduler retires it with
            # exactly one ``cancelled`` job_end unless it is already
            # executing (then it completes with its real outcome).
            self.scheduler.cancel(job_id)
        return action

    # -- boot-time resume ------------------------------------------------------

    def _resume_from_ledgers(self) -> None:
        """Rebuild the job table from every namespace ledger on disk."""
        from repro.serve.session import scan_journal

        for name in self.store.existing():
            ns = self.store.namespace(name)
            terminal, pending = scan_journal(ns.journal_path)
            for record in terminal.values():
                try:
                    spec = JobSpec.from_dict(record["spec"])
                except ExplorationError:
                    continue  # a spec this code no longer understands
                self.queue.submit(spec, name, replayed_record=record)
            for event in pending:
                try:
                    spec = JobSpec.from_dict(event["spec"])
                except ExplorationError:
                    continue
                try:
                    _, created = self.submit(
                        spec,
                        namespace=name,
                        priority=int(event.get("priority", 0)),
                        resumed=True,
                    )
                except QueueFull:
                    # A backlog larger than --max-queue must not abort
                    # boot: resume what fits, journal the overflow (the
                    # dropped job's job_submitted is still in the
                    # namespace ledger, so the next restart — or a
                    # client re-submission — picks it up again).
                    self.telemetry.emit(
                        "resume_overflow",
                        job_id=spec.job_id,
                        namespace=name,
                    )
                    continue
                if created:
                    self.resumed_jobs += 1

    # -- dispatcher ------------------------------------------------------------

    def _run_batch(self, batch: List[JobEntry]) -> None:
        """Execute one claimed batch on the scheduler (worker thread)."""
        for entry in batch:
            if entry.cancel_requested:
                self.scheduler.cancel(entry.job_id)
        results = self.scheduler.run([entry.spec for entry in batch])
        # Telemetry routing already finished each entry as its job_end
        # was journaled; this is the backstop for results that produced
        # no journal record (finish() is idempotent).
        for entry, result in zip(batch, results):
            self.queue.finish(entry.job_id, result.to_dict())

    async def _dispatch_loop(self) -> None:
        """Claim batches and bridge them onto the dispatcher thread."""
        loop = asyncio.get_running_loop()
        while not self._stopping.is_set():
            batch = await loop.run_in_executor(
                self._dispatch_pool, self.queue.claim_batch, self.batch_limit, 0.2
            )
            if not batch:
                continue
            await loop.run_in_executor(
                self._dispatch_pool, self._run_batch, batch
            )

    # -- HTTP ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await protocol.read_request(reader)
                if request is None:
                    return
                await self._route(request, writer)
            except protocol.ProtocolError as error:
                writer.write(
                    protocol.error_response(error.status, error.message)
                )
            except (ConnectionResetError, BrokenPipeError):
                return
            except Exception as error:  # never kill the accept loop
                writer.write(
                    protocol.error_response(500, f"internal error: {error!r}")
                )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(
        self, request: protocol.Request, writer: asyncio.StreamWriter
    ) -> None:
        parts = [part for part in request.path.split("/") if part]
        method = request.method
        if request.path == "/healthz" and method == "GET":
            writer.write(protocol.json_response(200, self.health()))
        elif parts == ["jobs"] and method == "POST":
            writer.write(self._handle_submit(request))
        elif parts == ["jobs"] and method == "GET":
            views = self.queue.views(request.query.get("namespace"))
            writer.write(protocol.json_response(200, {"jobs": views}))
        elif len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            writer.write(self._handle_poll(parts[1]))
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "result"
            and method == "GET"
        ):
            writer.write(self._handle_result(parts[1]))
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "cancel"
            and method == "POST"
        ):
            writer.write(self._handle_cancel(parts[1]))
        elif (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "stream"
            and method == "GET"
        ):
            await self._handle_stream(parts[1], writer)
        elif len(parts) == 2 and parts[0] == "namespaces" and method == "GET":
            writer.write(self._handle_namespace(parts[1]))
        else:
            raise protocol.ProtocolError(
                404 if method in ("GET", "POST") else 405,
                f"no route for {method} {request.path}",
            )

    def _handle_submit(self, request: protocol.Request) -> bytes:
        payload = request.json()
        spec_data = payload.get("spec")
        if not isinstance(spec_data, dict):
            raise protocol.ProtocolError(400, "missing 'spec' object")
        try:
            spec = JobSpec.from_dict(spec_data)
        except ExplorationError as error:
            raise protocol.ProtocolError(400, f"invalid spec: {error}")
        except (KeyError, TypeError) as error:
            raise protocol.ProtocolError(400, f"malformed spec: {error!r}")
        namespace = str(payload.get("namespace", DEFAULT_NAMESPACE))
        try:
            priority = int(payload.get("priority", 0))
        except (TypeError, ValueError):
            raise protocol.ProtocolError(400, "priority must be an integer")
        try:
            entry, created = self.submit(spec, namespace, priority)
        except ValueError as error:  # bad namespace
            raise protocol.ProtocolError(400, str(error))
        except QueueFull as error:
            raise protocol.ProtocolError(429, str(error))
        body = dict(entry.view(), created=created)
        return protocol.json_response(202 if created else 200, body)

    def _entry_or_404(self, job_id: str) -> JobEntry:
        entry = self.queue.get(job_id)
        if entry is None:
            raise protocol.ProtocolError(404, f"unknown job {job_id!r}")
        return entry

    def _handle_poll(self, job_id: str) -> bytes:
        return protocol.json_response(200, self._entry_or_404(job_id).view())

    def _handle_result(self, job_id: str) -> bytes:
        entry = self._entry_or_404(job_id)
        if entry.state not in TERMINAL_STATES or entry.result is None:
            raise protocol.ProtocolError(
                409, f"job {job_id!r} is {entry.state}; no result yet"
            )
        return protocol.json_response(
            200, {"job_id": job_id, "replayed": entry.replayed,
                  "result": entry.result}
        )

    def _handle_cancel(self, job_id: str) -> bytes:
        self._entry_or_404(job_id)
        action = self.cancel(job_id)
        return protocol.json_response(
            200,
            dict(self.queue.get(job_id).view(), action=action),
        )

    def _handle_namespace(self, name: str) -> bytes:
        ns = self.store.namespace(name) if name in self.store.existing() else None
        if ns is None:
            raise protocol.ProtocolError(404, f"unknown namespace {name!r}")
        report = SweepReport.from_journal(ns.journal_path)
        statuses: Dict[str, int] = {}
        for result in report.results:
            statuses[result.status] = statuses.get(result.status, 0) + 1
        return protocol.json_response(
            200,
            {
                "namespace": name,
                "jobs": len(report.results),
                "statuses": statuses,
                "cache_totals": report.cache_totals,
                "total_job_time": report.total_job_time,
            },
        )

    async def _handle_stream(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        """SSE: relay the job's journal events until it is terminal."""
        entry = self._entry_or_404(job_id)
        path = self.store.namespace(entry.namespace).journal_path
        writer.write(protocol.sse_preamble())
        await writer.drain()
        offset = 0
        last_write = time.monotonic()
        while True:
            # Order matters: read the entry state BEFORE tailing. The
            # journal write precedes the table flip to terminal, so a
            # terminal state observed here guarantees the job_end is
            # already on disk and this pass's tail read relays it —
            # stream_end can never race ahead of the terminal record.
            current = self.queue.get(job_id)
            terminal = current is None or current.state in TERMINAL_STATES
            records, offset = tail_events(path, offset)
            for record in records:
                if record.get("job_id") != job_id:
                    continue
                writer.write(protocol.sse_event(record))
                await writer.drain()
                last_write = time.monotonic()
            if terminal:
                state = current.state if current is not None else "unknown"
                writer.write(
                    protocol.sse_event(
                        {"event": "stream_end", "job_id": job_id,
                         "state": state}
                    )
                )
                await writer.drain()
                return
            if not records:
                if time.monotonic() - last_write >= self.stream_keepalive:
                    # SSE comment: keeps quiet long-running jobs from
                    # tripping client/proxy read timeouts; clients
                    # ignore comment frames.
                    writer.write(protocol.sse_comment("keepalive"))
                    await writer.drain()
                    last_write = time.monotonic()
                await asyncio.sleep(self.stream_poll)

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "queue": self.queue.counts(),
            "depth": self.queue.depth(),
            "workers": self.workers,
            "serial": self.scheduler.serial,
            "batch_limit": self.batch_limit,
            "data_dir": self.store.data_dir,
            "resumed_jobs": self.resumed_jobs,
        }

    # -- lifecycle -------------------------------------------------------------

    async def _main(self, ready: Optional[threading.Event] = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._resume_from_ledgers()
        server = await asyncio.start_server(
            self._handle,
            self.host,
            self.port,
            limit=protocol.MAX_HEADER_BYTES,
        )
        self.port = server.sockets[0].getsockname()[1]
        dispatch_task = (
            asyncio.ensure_future(self._dispatch_loop())
            if self._dispatch_enabled
            else None
        )
        if self.on_ready is not None:
            self.on_ready(self)
        if ready is not None:
            ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._stopping.set()
            self.queue.stop()
            if dispatch_task is not None:
                # Graceful drain: the in-flight batch finishes (jobs
                # have worker-side deadlines when --timeout is set).
                await dispatch_task
            self._dispatch_pool.shutdown(wait=True)
            self.store.close()
            self.telemetry.close()

    def run_forever(self) -> int:
        """Blocking CLI entry point; Ctrl-C drains and exits 0."""
        try:
            asyncio.run(self._main())
        except KeyboardInterrupt:
            pass
        return 0

    def stop(self) -> None:
        """Request shutdown from any thread (idempotent)."""
        self._stopping.set()
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)

    # -- embedding (tests) -----------------------------------------------------

    def start_background(self, timeout: float = 10.0) -> int:
        """Run the event loop in a daemon thread; returns the bound port."""
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(ready)),
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("server failed to start in time")
        return self.port

    def stop_background(self, timeout: float = 30.0) -> None:
        self.stop()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None
