"""Wire protocol for ``repro serve``: minimal HTTP/1.1 + JSON + SSE.

The server speaks a deliberately small, stdlib-only subset of HTTP/1.1:
one request per connection (``Connection: close`` semantics), JSON
request and response bodies, and ``text/event-stream`` for the job
telemetry stream. Keeping the framing hand-rolled (rather than
``http.server``) lets the whole server run on one asyncio event loop —
no thread per connection — while remaining dependency-free.

Endpoints, all JSON unless noted (see ``docs/service.md``):

========  ==========================  =======================================
method    path                        meaning
========  ==========================  =======================================
GET       ``/healthz``                liveness + queue/worker counters
POST      ``/jobs``                   submit a spec (content-addressed dedup)
GET       ``/jobs``                   list job views (``?namespace=`` filter)
GET       ``/jobs/<id>``              one job's view (poll target)
GET       ``/jobs/<id>/result``       full terminal ``JobResult`` record
POST      ``/jobs/<id>/cancel``       best-effort cancellation
GET       ``/jobs/<id>/stream``       SSE: the job's journal events, live
GET       ``/namespaces/<ns>``        ledger-aggregated namespace report
========  ==========================  =======================================
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

#: Upper bounds keeping one misbehaving client from ballooning server
#: memory; both are far above any legitimate spec or header block.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """A request the server refuses, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        headers: Dict[str, str],
        body: bytes,
    ) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self) -> Dict[str, Any]:
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ProtocolError(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # client connected and left without sending
        raise ProtocolError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request head too large")
    try:
        text = head.decode("latin-1")
        request_line, *header_lines = text.split("\r\n")
        method, target, _version = request_line.split(" ", 2)
    except ValueError:
        raise ProtocolError(400, "malformed request line")
    headers: Dict[str, str] = {}
    for line in header_lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query))
    body = b""
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError:
        raise ProtocolError(400, f"bad Content-Length {length_header!r}")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"body of {length} bytes exceeds the limit")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "body shorter than Content-Length")
    return Request(method.upper(), split.path, query, headers, body)


def json_response(
    status: int, payload: Any, extra_headers: Optional[Dict[str, str]] = None
) -> bytes:
    """Serialize one complete JSON response (sorted keys: byte-stable)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message, "status": status})


def sse_preamble() -> bytes:
    """Response head opening a server-sent-event stream."""
    return (
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/event-stream; charset=utf-8\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


def sse_comment(text: str = "keepalive") -> bytes:
    """Frame an SSE comment — a liveness ping clients must ignore.

    Sent while a quiet job runs so the connection carries bytes often
    enough that client (and proxy) read timeouts never fire between
    ``job_start`` and ``job_end``.
    """
    return f": {text}\n\n".encode("utf-8")


def sse_event(record: Dict[str, Any]) -> bytes:
    """Frame one journal record as an SSE message.

    The journal's ``event`` field becomes the SSE event name and the
    whole record rides in ``data:`` — one JSON object per message, so
    ``repro submit --stream`` (and curl) can replay the journal live.
    """
    name = str(record.get("event", "message"))
    data = json.dumps(record, sort_keys=True)
    return f"event: {name}\ndata: {data}\n\n".encode("utf-8")
