"""Stdlib client for the ``repro serve`` HTTP protocol.

``urllib``-based, dependency-free — usable from tests, CI smoke jobs
and the ``repro submit`` CLI command alike. Every method mirrors one
endpoint of :mod:`repro.serve.protocol`; errors the server refuses with
a JSON body surface as :class:`ServeError` carrying the HTTP status.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from repro.runtime.job import JobSpec
from repro.serve.queue import TERMINAL_STATES


class ServeError(Exception):
    """A request the server refused (4xx/5xx with a JSON error body)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Talk to one ``repro serve`` instance."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
                message = body.get("error", error.reason)
            except (ValueError, UnicodeDecodeError):
                message = str(error.reason)
            raise ServeError(error.code, message) from None

    # -- endpoints -------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")

    def submit(
        self,
        spec: JobSpec,
        namespace: str = "default",
        priority: int = 0,
    ) -> Dict[str, Any]:
        """Submit a spec; the response view carries ``created``."""
        return self._request(
            "POST",
            "/jobs",
            {
                "spec": spec.to_dict(),
                "namespace": namespace,
                "priority": priority,
            },
        )

    def jobs(self, namespace: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/jobs"
        if namespace is not None:
            path += f"?namespace={namespace}"
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """The terminal ``JobResult`` record (409 while still running)."""
        return self._request("GET", f"/jobs/{job_id}/result")["result"]

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def namespace_report(self, namespace: str) -> Dict[str, Any]:
        return self._request("GET", f"/namespaces/{namespace}")

    # -- conveniences ----------------------------------------------------------

    def wait(
        self,
        job_id: str,
        timeout: float = 300.0,
        poll_interval: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job is terminal; returns its result record."""
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)
            if view["state"] in TERMINAL_STATES:
                return self.result(job_id)
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {view['state']} after {timeout}s"
                )
            time.sleep(poll_interval)

    def stream(
        self, job_id: str, read_timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's journal records live from the SSE endpoint.

        Terminates after the server's ``stream_end`` marker (which is
        not yielded — it is framing, not a journal record). Unlike the
        request/response endpoints this read blocks for as long as the
        job runs, so ``self.timeout`` does not apply: by default there
        is no read timeout (the server ends every stream with
        ``stream_end`` and sends keepalive comments while the job is
        quiet); pass ``read_timeout`` to bound each socket read anyway.
        """
        request = urllib.request.Request(
            self.base_url + f"/jobs/{job_id}/stream",
            headers={"Accept": "text/event-stream"},
        )
        try:
            response = urllib.request.urlopen(request, timeout=read_timeout)
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
                message = body.get("error", error.reason)
            except (ValueError, UnicodeDecodeError):
                message = str(error.reason)
            raise ServeError(error.code, message) from None
        with response:
            for raw in response:
                line = raw.decode("utf-8").rstrip("\n")
                if not line.startswith("data: "):
                    continue  # event name / blank separator lines
                record = json.loads(line[len("data: "):])
                if record.get("event") == "stream_end":
                    return
                yield record
