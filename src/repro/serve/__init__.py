"""Exploration as a service: the ``repro serve`` job server.

A zero-dependency asyncio HTTP+JSON server over the batch runtime:
content-addressed :class:`~repro.runtime.job.JobSpec` submission with
dedup, a priority queue feeding the existing
:class:`~repro.runtime.scheduler.Scheduler`, per-client namespace
ledgers with crash-restart resume, and server-sent-event streaming of
each job's telemetry. See ``docs/service.md`` for the wire protocol.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import ProtocolError, Request
from repro.serve.queue import JobEntry, JobQueue, QueueFull
from repro.serve.server import JobServer
from repro.serve.session import SessionStore

__all__ = [
    "JobEntry",
    "JobQueue",
    "JobServer",
    "ProtocolError",
    "QueueFull",
    "Request",
    "ServeClient",
    "ServeError",
    "SessionStore",
]
