"""Thread-safe priority queue with content-addressed dedup.

The server's in-memory job table. Submission is deduplicated on the
spec's content-addressed ``job_id``: re-submitting a spec that is
queued, dispatched, running or successfully finished returns the
existing entry; a spec whose last outcome was a *runtime failure*
(``error``/``crashed``/``timeout``/``cancelled``) is re-enqueued — the
client asked again, so the runtime gets another go, mirroring the
``sweep --resume`` ledger semantics.

Ordering: higher ``priority`` first, FIFO (submission sequence) within
a priority. The dispatcher claims batches under the same lock the HTTP
handlers mutate entries under, so a claim and a cancel can never both
win the same entry.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.job import JobSpec
from repro.runtime.ledger import RUNTIME_FAILURES

#: Entry lifecycle states. ``queued`` entries sit in the heap;
#: ``dispatched`` entries belong to the scheduler batch in flight;
#: ``running`` is observed from ``job_start`` telemetry; ``done`` and
#: ``cancelled`` are terminal (``done`` covers every outcome carried by
#: a ``JobResult`` record, including runtime failures).
QUEUED = "queued"
DISPATCHED = "dispatched"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"

TERMINAL_STATES = frozenset({DONE, CANCELLED})


class QueueFull(Exception):
    """Submission refused: the backlog reached ``max_queue``."""


class JobEntry:
    """One job's server-side state (guarded by the queue's lock)."""

    __slots__ = (
        "spec",
        "namespace",
        "priority",
        "seq",
        "state",
        "result",
        "replayed",
        "cancel_requested",
        "submitted_ts",
    )

    def __init__(
        self, spec: JobSpec, namespace: str, priority: int, seq: int
    ) -> None:
        self.spec = spec
        self.namespace = namespace
        self.priority = priority
        self.seq = seq
        self.state = QUEUED
        #: Terminal ``JobResult.to_dict()`` record, once known.
        self.result: Optional[Dict[str, Any]] = None
        #: True when the record came from a boot-time ledger replay
        #: rather than an execution by this server process.
        self.replayed = False
        #: Cancel arrived after dispatch; forwarded to the scheduler.
        self.cancel_requested = False
        self.submitted_ts = time.time()

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    def view(self) -> Dict[str, Any]:
        """The poll-endpoint projection of this entry."""
        return {
            "job_id": self.job_id,
            "label": self.spec.label,
            "namespace": self.namespace,
            "priority": self.priority,
            "state": self.state,
            "status": (self.result or {}).get("status"),
            "replayed": self.replayed,
            "cancel_requested": self.cancel_requested,
        }


class JobQueue:
    """Priority queue + job table behind the HTTP endpoints."""

    def __init__(self, max_queue: int = 1024) -> None:
        self.max_queue = max_queue
        self._lock = threading.RLock()
        self._ready = threading.Condition(self._lock)
        #: (-priority, seq, job_id): min-heap pops highest priority,
        #: then lowest submission seq — client priority with FIFO ties.
        self._heap: List[Tuple[int, int, str]] = []
        self._entries: Dict[str, JobEntry] = {}
        self._seq = 0
        self._stopped = False

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        spec: JobSpec,
        namespace: str,
        priority: int = 0,
        replayed_record: Optional[Dict[str, Any]] = None,
    ) -> Tuple[JobEntry, bool]:
        """Register a spec; returns ``(entry, created)``.

        ``created`` is False when dedup matched an existing live or
        successful entry. Passing ``replayed_record`` registers a
        terminal entry straight from a boot-time ledger scan (no queue
        traffic).
        """
        with self._ready:
            existing = self._entries.get(spec.job_id)
            if existing is not None and not self._resubmittable(existing):
                return existing, False
            if replayed_record is None and self.depth() >= self.max_queue:
                raise QueueFull(
                    f"queue limit of {self.max_queue} queued jobs reached"
                )
            self._seq += 1
            entry = JobEntry(spec, namespace, priority, self._seq)
            self._entries[spec.job_id] = entry
            if replayed_record is not None:
                entry.state = DONE
                entry.result = replayed_record
                entry.replayed = True
            else:
                heapq.heappush(
                    self._heap, (-priority, entry.seq, spec.job_id)
                )
                self._ready.notify_all()
            return entry, True

    @staticmethod
    def _resubmittable(entry: JobEntry) -> bool:
        """A finished-but-failed job may be asked for again."""
        if entry.state == CANCELLED:
            return True
        if entry.state != DONE:
            return False
        return (entry.result or {}).get("status") in RUNTIME_FAILURES

    # -- dispatch --------------------------------------------------------------

    def claim_batch(
        self, limit: int, timeout: Optional[float] = None
    ) -> List[JobEntry]:
        """Pop up to ``limit`` queued entries in priority order.

        Blocks up to ``timeout`` seconds for the first entry. Claimed
        entries move to ``dispatched`` atomically, so a concurrent
        cancel of the same job observes either a queued entry (and
        retires it locally) or a dispatched one (and routes the cancel
        to the scheduler) — never both.
        """
        with self._ready:
            if not self._heap and not self._stopped:
                self._ready.wait(timeout)
            batch: List[JobEntry] = []
            while self._heap and len(batch) < limit:
                _, seq, job_id = heapq.heappop(self._heap)
                entry = self._entries.get(job_id)
                if entry is None or entry.state != QUEUED or entry.seq != seq:
                    # Stale tuple: the job was cancelled, or re-submitted
                    # (the fresh tuple carries the live entry's seq and
                    # new priority — only it may claim the entry).
                    continue
                entry.state = DISPATCHED
                batch.append(entry)
            return batch

    def stop(self) -> None:
        """Wake any blocked dispatcher so it can observe shutdown."""
        with self._ready:
            self._stopped = True
            self._ready.notify_all()

    # -- lifecycle transitions -------------------------------------------------

    def mark_running(self, job_id: str) -> None:
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is not None and entry.state == DISPATCHED:
                entry.state = RUNNING

    def finish(self, job_id: str, record: Dict[str, Any]) -> None:
        """Record a terminal ``JobResult`` record (idempotent)."""
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                return
            if entry.state in TERMINAL_STATES:
                # A queue-side cancel flips the state first and hands
                # us its record right after; attach it, but never let a
                # late record overwrite an established outcome.
                if entry.result is None:
                    entry.result = record
                return
            entry.result = record
            entry.state = (
                CANCELLED if record.get("status") == "cancelled" else DONE
            )

    def cancel(self, job_id: str) -> Optional[str]:
        """Request cancellation; returns the action taken.

        ``"cancelled"``  — entry was still queued and is now terminal
        (the caller owns journaling its single ``job_end``);
        ``"requested"`` — entry is dispatched/running, the scheduler
        must be asked; ``"finished"`` — already terminal; ``None`` —
        unknown job.
        """
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                return None
            if entry.state == QUEUED:
                entry.state = CANCELLED
                entry.cancel_requested = True
                return "cancelled"
            if entry.state in (DISPATCHED, RUNNING):
                entry.cancel_requested = True
                return "requested"
            return "finished"

    # -- inspection ------------------------------------------------------------

    def get(self, job_id: str) -> Optional[JobEntry]:
        with self._lock:
            return self._entries.get(job_id)

    def depth(self) -> int:
        """How many entries are waiting (queued, not yet dispatched)."""
        with self._lock:
            return sum(
                1 for entry in self._entries.values() if entry.state == QUEUED
            )

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts: Dict[str, int] = {}
            for entry in self._entries.values():
                counts[entry.state] = counts.get(entry.state, 0) + 1
            return counts

    def views(self, namespace: Optional[str] = None) -> List[Dict[str, Any]]:
        """Submission-ordered entry views, optionally per namespace."""
        with self._lock:
            entries = sorted(self._entries.values(), key=lambda e: e.seq)
            return [
                entry.view()
                for entry in entries
                if namespace is None or entry.namespace == namespace
            ]
