"""Per-client namespaces: durable ledgers and boot-time resume.

Each client namespace owns one journal at
``<data-dir>/<namespace>/journal.jsonl`` — the same JSONL ledger format
``sweep --resume`` replays, written fsync-per-event so an acknowledged
submission survives a SIGKILL of the server. The server journals a
``job_submitted`` event (embedding the full spec and priority) *before*
acknowledging a submission; together with the scheduler's ``job_end``
records that makes the journal a complete account of the namespace:

* last ``job_end`` per job id (``load_ledger`` view) — the job's
  terminal record, replayed into the job table on boot;
* ``job_submitted`` with no later ``job_end`` — work that was in
  flight (or queued) when the previous server died, re-enqueued on
  boot. Ordering matters: a job that crashed and was then accepted
  again (its last ``job_submitted`` appears *after* its last
  ``job_end``) is an acknowledged re-submission, so it is classified
  pending, not terminal — kill -9 loses nothing acknowledged.

A job whose last record is ``cancelled`` stays cancelled across
restarts — the client asked for that; crashed/timeout/error records are
also left terminal (unlike ``sweep --resume``, a server must not retry
a failing spec on every boot) and are re-enqueued only when a client
re-submits them.
"""

from __future__ import annotations

import os
import re
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.ledger import load_ledger
from repro.runtime.telemetry import TelemetryLogger, iter_events

#: Namespaces map to directory names; keep them boring and portable.
_SAFE_NAMESPACE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

JOURNAL_NAME = "journal.jsonl"


def valid_namespace(name: str) -> bool:
    return bool(_SAFE_NAMESPACE.match(name)) and name not in (".", "..")


def scan_journal(
    path: str,
) -> Tuple[Dict[str, Dict[str, Any]], List[Dict[str, Any]]]:
    """Classify one namespace journal for boot-time resume.

    Returns ``(terminal, pending)``: the last-record-wins ledger view
    of terminal records, and the latest ``job_submitted`` event of
    every job whose last relevant record is a submission — no terminal
    record at all, or (an acknowledged re-submission of a failed job)
    a ``job_submitted`` after its last ``job_end``. Pending events are
    ordered by their position in the journal; a re-submitted job is
    excluded from ``terminal`` so the boot replay re-enqueues it
    instead of resurrecting the stale terminal record.
    """
    submitted: Dict[str, Dict[str, Any]] = {}
    last_submitted: Dict[str, int] = {}
    last_end: Dict[str, int] = {}
    for index, event in enumerate(iter_events(path)):
        job_id = event.get("job_id")
        if not job_id:
            continue
        name = event.get("event")
        if name == "job_submitted" and event.get("spec"):
            submitted[job_id] = event
            last_submitted[job_id] = index
        elif name == "job_end":
            last_end[job_id] = index
    pending_ids = sorted(
        (
            job_id
            for job_id in submitted
            if last_submitted[job_id] > last_end.get(job_id, -1)
        ),
        key=lambda job_id: last_submitted[job_id],
    )
    terminal = {
        job_id: record
        for job_id, record in load_ledger(path).items()
        if record.get("spec") and job_id not in set(pending_ids)
    }
    pending = [submitted[job_id] for job_id in pending_ids]
    return terminal, pending


class Namespace:
    """One client namespace: a directory plus its journal writer."""

    def __init__(self, root: str, name: str) -> None:
        self.name = name
        self.dir = os.path.join(root, name)
        os.makedirs(self.dir, exist_ok=True)
        self.journal_path = os.path.join(self.dir, JOURNAL_NAME)
        #: fsync-per-event: an acknowledged submission is on disk
        #: before the HTTP 202 leaves the server.
        self.logger = TelemetryLogger(self.journal_path, fsync=True)

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        return self.logger.emit(event, **fields)

    def close(self) -> None:
        self.logger.close()


class SessionStore:
    """All namespaces under one ``--data-dir`` (thread-safe)."""

    def __init__(self, data_dir: str) -> None:
        self.data_dir = data_dir
        os.makedirs(data_dir, exist_ok=True)
        self._lock = threading.Lock()
        self._namespaces: Dict[str, Namespace] = {}

    def namespace(self, name: str) -> Namespace:
        if not valid_namespace(name):
            raise ValueError(f"invalid namespace {name!r}")
        with self._lock:
            if name not in self._namespaces:
                self._namespaces[name] = Namespace(self.data_dir, name)
            return self._namespaces[name]

    def existing(self) -> List[str]:
        """Namespaces already on disk (sorted: deterministic resume)."""
        try:
            candidates = sorted(os.listdir(self.data_dir))
        except OSError:
            return []
        return [
            name
            for name in candidates
            if valid_namespace(name)
            and os.path.exists(
                os.path.join(self.data_dir, name, JOURNAL_NAME)
            )
        ]

    def close(self) -> None:
        with self._lock:
            for namespace in self._namespaces.values():
                namespace.close()
            self._namespaces.clear()


class RoutingTelemetry:
    """The telemetry facade handed to the server's ``Scheduler``.

    The scheduler knows one telemetry sink; the server multiplexes many
    namespaces through it. Events carrying a ``job_id`` are routed to
    the journal of the namespace owning that job; batch-level events
    (``sweep_start``/``sweep_end``/``scheduler_degraded``/...) land in
    a server-wide ``server.jsonl``. Every event is also offered to
    ``on_event`` so the server can mirror lifecycle transitions into
    the in-memory job table without a second journal read.
    """

    path = None

    def __init__(
        self,
        store: SessionStore,
        owner_of: Callable[[str], Optional[str]],
        on_event: Optional[Callable[[str, Dict[str, Any]], None]] = None,
    ) -> None:
        self._store = store
        self._owner_of = owner_of
        self._on_event = on_event
        self._server_log = TelemetryLogger(
            os.path.join(store.data_dir, "server.jsonl"), fsync=False
        )
        self.events_emitted = 0

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        job_id = fields.get("job_id")
        owner = self._owner_of(job_id) if job_id else None
        if owner is not None:
            record = self._store.namespace(owner).emit(event, **fields)
        else:
            record = self._server_log.emit(event, **fields)
        self.events_emitted += 1
        if self._on_event is not None:
            self._on_event(event, fields)
        return record

    def close(self) -> None:
        self._server_log.close()
