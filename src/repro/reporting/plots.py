"""ASCII line/scatter plots for runtime-vs-size figures.

Renders the Fig. 5-style series as a log-scale character plot so the
benchmark harness can emit an actual *figure*, not just a table, into
terminals and result files.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

Series = Dict[str, List[Tuple[float, Optional[float]]]]

_MARKERS = "ox+*#@%&"


def _log(value: float) -> float:
    return math.log10(max(value, 1e-9))


def render_series_plot(
    series: Series,
    title: str = "",
    width: int = 60,
    height: int = 16,
    x_label: str = "size",
    y_label: str = "time (s, log)",
) -> str:
    """Plot named series of (x, y) points; y on a log10 scale.

    Points with ``y = None`` (timeouts / DNF) are skipped but noted in
    the legend.
    """
    points: List[Tuple[float, float, int]] = []
    skipped: Dict[str, int] = {}
    names = sorted(series)
    for index, name in enumerate(names):
        for x, y in series[name]:
            if y is None:
                skipped[name] = skipped.get(name, 0) + 1
                continue
            points.append((float(x), _log(float(y)), index))
    if not points:
        return (title + "\n" if title else "") + "(no finished data points)"

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max - x_min < 1e-12:
        x_max = x_min + 1.0
    if y_max - y_min < 1e-12:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y, index in points:
        col = round((x - x_min) / (x_max - x_min) * (width - 1))
        row = round((y - y_min) / (y_max - y_min) * (height - 1))
        row = height - 1 - row  # invert: larger y on top
        marker = _MARKERS[index % len(_MARKERS)]
        current = grid[row][col]
        grid[row][col] = "!" if current not in (" ", marker) else marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_value = 10 ** y_max
    bottom_value = 10 ** y_min
    lines.append(f"{y_label}  (top {top_value:.3g}s, bottom {bottom_value:.3g}s)")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" {x_label}: {x_min:g} .. {x_max:g}   ('!' = overlapping points)"
    )
    legend = []
    for index, name in enumerate(names):
        note = f" ({skipped[name]} DNF)" if name in skipped else ""
        legend.append(f"{_MARKERS[index % len(_MARKERS)]}={name}{note}")
    lines.append(" legend: " + "  ".join(legend))
    return "\n".join(lines)
