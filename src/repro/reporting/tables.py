"""Paper-style table rendering for benchmark harnesses.

Produces fixed-width text tables in the layout of the paper's Table II
and simple two-column runtime tables for the Fig. 5 sweeps.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def format_seconds(value: Optional[float]) -> str:
    """Render a runtime the way the paper does (scientific above 100s)."""
    if value is None:
        return "-"
    if value >= 100.0:
        exponent = 0
        mantissa = value
        while mantissa >= 10.0:
            mantissa /= 10.0
            exponent += 1
        return f"{mantissa:.2f}e{exponent}"
    return f"{value:.2f}"


def format_signed(delta: float, unit: str = "", nd: int = 3) -> str:
    """Render a signed delta cell ("+0.120s", "-3", "+0.0%").

    Zero keeps an explicit "+0" so diff tables stay column-stable: the
    sign column never collapses when a metric happens to be unchanged.
    """
    text = f"{delta:+.{nd}f}".rstrip("0").rstrip(".")
    if text in ("+", "-"):
        text = "+0"
    return f"{text}{unit}"


def _render_cell(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:g}"
    return str(cell)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
) -> str:
    """Fixed-width table with a separator under the header."""
    rendered_rows: List[List[str]] = [[_render_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


class Table2Row:
    """One row of the Table II reproduction."""

    __slots__ = (
        "template",
        "variables",
        "constraints",
        "only_iso_time",
        "only_iso_iters",
        "only_decomp_time",
        "only_decomp_iters",
        "complete_time",
        "complete_iters",
    )

    def __init__(
        self,
        template: str,
        variables: int,
        constraints: int,
        only_iso_time: Optional[float] = None,
        only_iso_iters: Optional[int] = None,
        only_decomp_time: Optional[float] = None,
        only_decomp_iters: Optional[int] = None,
        complete_time: Optional[float] = None,
        complete_iters: Optional[int] = None,
    ) -> None:
        self.template = template
        self.variables = variables
        self.constraints = constraints
        self.only_iso_time = only_iso_time
        self.only_iso_iters = only_iso_iters
        self.only_decomp_time = only_decomp_time
        self.only_decomp_iters = only_decomp_iters
        self.complete_time = complete_time
        self.complete_iters = complete_iters


def render_table2(rows: Sequence[Table2Row]) -> str:
    """Render the Table II layout, including the average/ratio footer."""
    headers = [
        "Max # in T (L,R,APU)",
        "# vars",
        "# cons",
        "iso time(s)",
        "iso iters",
        "dec time(s)",
        "dec iters",
        "full time(s)",
        "full iters",
    ]
    body: List[List[Cell]] = []
    for row in rows:
        body.append(
            [
                row.template,
                row.variables,
                row.constraints,
                format_seconds(row.only_iso_time),
                row.only_iso_iters,
                format_seconds(row.only_decomp_time),
                row.only_decomp_iters,
                format_seconds(row.complete_time),
                row.complete_iters,
            ]
        )

    def average(values: List[Optional[float]]) -> Optional[float]:
        present = [v for v in values if v is not None]
        return sum(present) / len(present) if present else None

    avg_iso_t = average([r.only_iso_time for r in rows])
    avg_dec_t = average([r.only_decomp_time for r in rows])
    avg_full_t = average([r.complete_time for r in rows])
    avg_iso_i = average([float(r.only_iso_iters) for r in rows if r.only_iso_iters is not None])
    avg_dec_i = average([float(r.only_decomp_iters) for r in rows if r.only_decomp_iters is not None])
    avg_full_i = average([float(r.complete_iters) for r in rows if r.complete_iters is not None])

    body.append(
        [
            "Average",
            None,
            None,
            format_seconds(avg_iso_t),
            f"{avg_iso_i:.1f}" if avg_iso_i is not None else None,
            format_seconds(avg_dec_t),
            f"{avg_dec_i:.1f}" if avg_dec_i is not None else None,
            format_seconds(avg_full_t),
            f"{avg_full_i:.1f}" if avg_full_i is not None else None,
        ]
    )
    if avg_full_t and avg_iso_t is not None and avg_dec_t is not None:
        body.append(
            [
                "Ratio (vs complete)",
                None,
                None,
                f"{avg_iso_t / avg_full_t:.2f}",
                f"{avg_iso_i / avg_full_i:.2f}" if avg_iso_i and avg_full_i else None,
                f"{avg_dec_t / avg_full_t:.2f}",
                f"{avg_dec_i / avg_full_i:.2f}" if avg_dec_i and avg_full_i else None,
                "1.00",
                "1.00",
            ]
        )
    return render_table(headers, body, title="Table II (reproduction) - EPN")
