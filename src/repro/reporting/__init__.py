"""Paper-style result reporting."""

from repro.reporting.tables import (
    Table2Row,
    format_seconds,
    render_table,
    render_table2,
)
from repro.reporting.plots import render_series_plot

__all__ = [
    "Table2Row",
    "format_seconds",
    "render_table",
    "render_table2",
    "render_series_plot",
]
