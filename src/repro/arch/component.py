"""Component types and template components (Definitions 1-2).

A :class:`ComponentType` names a partition of the architecture graph
(e.g. ``machine``, ``conveyor``, ``ac_bus``) and declares the attributes
its implementations must provide. A :class:`Component` is a node of the
template: an *instantiable slot* of some type, with per-slot parameters
(generated/consumed flow, fan-in/fan-out caps, jitter bounds) consumed
by the contract generators in :mod:`repro.spec`.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.exceptions import ArchitectureError


class ComponentType:
    """A node type / partition label.

    ``attributes`` lists the implementation attributes every library
    entry of this type must define (beyond ``cost``).
    """

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: Tuple[str, ...] = ()) -> None:
        if not name:
            raise ArchitectureError("component type name must be non-empty")
        self.name = name
        self.attributes = tuple(attributes)

    def __eq__(self, other) -> bool:
        return isinstance(other, ComponentType) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("ComponentType", self.name))

    def __repr__(self) -> str:
        return f"ComponentType({self.name!r}, attrs={list(self.attributes)})"


class Component:
    """A template slot that exploration may or may not instantiate."""

    __slots__ = (
        "name",
        "ctype",
        "max_fan_in",
        "max_fan_out",
        "generated_flow",
        "consumed_flow",
        "input_jitter",
        "output_jitter",
        "params",
        "weight",
    )

    def __init__(
        self,
        name: str,
        ctype: ComponentType,
        max_fan_in: int = 0,
        max_fan_out: int = 0,
        generated_flow: float = 0.0,
        consumed_flow: float = 0.0,
        input_jitter: float = math.inf,
        output_jitter: float = math.inf,
        weight: float = 1.0,
        params: Optional[Dict[str, float]] = None,
    ) -> None:
        """``max_fan_in``/``max_fan_out`` of 0 mean "no explicit cap"
        (bounded only by the number of candidate neighbours). ``weight``
        is the cost weight ``alpha_i`` of the paper's objective."""
        if not name:
            raise ArchitectureError("component name must be non-empty")
        self.name = name
        self.ctype = ctype
        self.max_fan_in = max_fan_in
        self.max_fan_out = max_fan_out
        self.generated_flow = float(generated_flow)
        self.consumed_flow = float(consumed_flow)
        self.input_jitter = float(input_jitter)
        self.output_jitter = float(output_jitter)
        self.weight = float(weight)
        self.params: Dict[str, float] = dict(params or {})

    @property
    def type_name(self) -> str:
        return self.ctype.name

    def param(self, key: str, default: float = 0.0) -> float:
        return self.params.get(key, default)

    def __eq__(self, other) -> bool:
        return isinstance(other, Component) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Component", self.name))

    def __repr__(self) -> str:
        return f"Component({self.name!r}, type={self.ctype.name!r})"
