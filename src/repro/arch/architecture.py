"""Candidate architectures (the ``A_map`` of the paper).

A :class:`CandidateArchitecture` freezes one assignment of the edge and
mapping variables of a :class:`repro.arch.template.MappingTemplate`
— normally the solution of the Problem-2 MILP — and offers the views the
rest of the pipeline needs: the selected graph, per-slot implementation
choices, the structural variable assignment for contract substitution,
and path sub-architectures for compositional refinement.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ArchitectureError
from repro.arch.component import Component
from repro.arch.library import Implementation
from repro.arch.template import MappingTemplate
from repro.expr.terms import Var
from repro.graph.digraph import DiGraph
from repro.graph.paths import path_edges


class CandidateArchitecture:
    """A selected mapping: chosen edges plus chosen implementations."""

    def __init__(
        self,
        mapping_template: MappingTemplate,
        selected_edges: Sequence[Tuple[str, str]],
        selected_impls: Mapping[str, Implementation],
    ) -> None:
        self.mapping_template = mapping_template
        self.selected_edges: List[Tuple[str, str]] = list(selected_edges)
        self.selected_impls: Dict[str, Implementation] = dict(selected_impls)
        template = mapping_template.template
        for src, dst in self.selected_edges:
            if not mapping_template.has_edge(src, dst):
                raise ArchitectureError(
                    f"selected edge ({src!r}, {dst!r}) is not a candidate edge"
                )
        for name, impl in self.selected_impls.items():
            expected = template.component(name).type_name
            if impl.type_name != expected:
                raise ArchitectureError(
                    f"component {name!r} of type {expected!r} mapped to "
                    f"implementation {impl.name!r} of type {impl.type_name!r}"
                )

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_assignment(
        cls,
        mapping_template: MappingTemplate,
        assignment: Mapping[Var, float],
    ) -> "CandidateArchitecture":
        """Build from a solver assignment over the structural variables."""
        selected_edges = [
            key
            for key, var in mapping_template.edge_vars().items()
            if assignment.get(var, 0.0) >= 0.5
        ]
        selected_impls: Dict[str, Implementation] = {}
        for (component, impl_name), var in mapping_template.mapping_vars().items():
            if assignment.get(var, 0.0) >= 0.5:
                if component in selected_impls:
                    raise ArchitectureError(
                        f"component {component!r} mapped to two implementations"
                    )
                selected_impls[component] = mapping_template.library.get(impl_name)
        return cls(mapping_template, selected_edges, selected_impls)

    # -- queries -------------------------------------------------------------------

    def is_instantiated(self, component: str) -> bool:
        return component in self.selected_impls

    def instantiated_components(self) -> List[Component]:
        template = self.mapping_template.template
        return [template.component(name) for name in sorted(self.selected_impls)]

    def implementation_of(self, component: str) -> Implementation:
        try:
            return self.selected_impls[component]
        except KeyError:
            raise ArchitectureError(f"component {component!r} is not instantiated")

    @property
    def cost(self) -> float:
        """Weighted cost of the selected implementations (paper objective)."""
        template = self.mapping_template.template
        return sum(
            template.component(name).weight * impl.cost
            for name, impl in self.selected_impls.items()
        )

    # -- graphs ----------------------------------------------------------------------

    def graph(self) -> DiGraph:
        """Selected architecture as a typed digraph.

        Nodes carry the chosen implementation name in the ``impl`` attr.
        """
        template = self.mapping_template.template
        graph = DiGraph(f"{template.name}:candidate")
        for name, impl in self.selected_impls.items():
            component = template.component(name)
            graph.add_node(name, label=component.type_name, impl=impl.name)
        for src, dst in self.selected_edges:
            # Edges between non-instantiated slots cannot occur in a
            # contract-consistent candidate, but guard anyway.
            if graph.has_node(src) and graph.has_node(dst):
                graph.add_edge(src, dst)
        return graph

    def mapping_graph(self) -> DiGraph:
        """Selected architecture plus implementation nodes (Fig. 4 style)."""
        graph = self.graph()
        for name, impl in self.selected_impls.items():
            impl_node = f"impl:{impl.name}"
            if not graph.has_node(impl_node):
                graph.add_node(
                    impl_node,
                    label=f"impl:{impl.type_name}",
                    shape="box",
                    display=impl.name,
                )
            graph.add_edge(name, impl_node, style="dashed")
        return graph

    def sub_architecture(self, nodes: Sequence[str]) -> "SubArchitecture":
        """Restrict to a path/subset of instantiated slots (Alg. 1 line 8)."""
        missing = [n for n in nodes if n not in self.selected_impls]
        if missing:
            raise ArchitectureError(
                f"nodes not instantiated in candidate: {missing}"
            )
        edges = [
            (src, dst)
            for src, dst in path_edges(list(nodes))
        ]
        for src, dst in edges:
            if (src, dst) not in self.selected_edges:
                raise ArchitectureError(
                    f"path edge ({src!r}, {dst!r}) is not selected"
                )
        return SubArchitecture(self, list(nodes), edges)

    def whole_architecture(self) -> "SubArchitecture":
        """The candidate itself viewed as an (improper) sub-architecture."""
        return SubArchitecture(
            self, sorted(self.selected_impls), list(self.selected_edges)
        )

    # -- assignments --------------------------------------------------------------------

    def structural_assignment(self) -> Dict[Var, float]:
        """Values of every e/m variable under this candidate (0 or 1)."""
        assignment: Dict[Var, float] = {}
        for key, var in self.mapping_template.edge_vars().items():
            assignment[var] = 1.0 if key in set(self.selected_edges) else 0.0
        selected = {
            (component, impl.name) for component, impl in self.selected_impls.items()
        }
        for key, var in self.mapping_template.mapping_vars().items():
            assignment[var] = 1.0 if key in selected else 0.0
        return assignment

    def attribute_assignment(self) -> Dict[Var, float]:
        """Values of the u(attr, i) variables implied by the mapping."""
        assignment: Dict[Var, float] = {}
        template = self.mapping_template.template
        for component in template.components():
            for attr in component.ctype.attributes:
                var = self.mapping_template.attribute(attr, component.name)
                impl = self.selected_impls.get(component.name)
                assignment[var] = impl.attribute(attr) if impl else 0.0
        return assignment

    def __repr__(self) -> str:
        return (
            f"CandidateArchitecture(edges={len(self.selected_edges)}, "
            f"instantiated={len(self.selected_impls)}, cost={self.cost:g})"
        )


class SubArchitecture:
    """A fragment of a candidate: the ``G_map`` passed to Algorithm 2."""

    __slots__ = ("candidate", "nodes", "edges")

    def __init__(
        self,
        candidate: CandidateArchitecture,
        nodes: List[str],
        edges: List[Tuple[str, str]],
    ) -> None:
        self.candidate = candidate
        self.nodes = nodes
        self.edges = edges

    @property
    def is_whole_candidate(self) -> bool:
        """Whether this fragment covers the entire candidate
        (``G_map = A_map`` branch of Algorithm 2)."""
        return set(self.nodes) == set(self.candidate.selected_impls) and set(
            self.edges
        ) == set(self.candidate.selected_edges)

    def graph(self) -> DiGraph:
        """Detached typed graph of the fragment (implementations dropped,
        Algorithm 2 line 4)."""
        template = self.candidate.mapping_template.template
        graph = DiGraph("invalid-architecture")
        for name in self.nodes:
            graph.add_node(name, label=template.component(name).type_name)
        for src, dst in self.edges:
            graph.add_edge(src, dst)
        return graph

    def implementations(self) -> Dict[str, Implementation]:
        """Per-node selected implementations (``L_g`` of Algorithm 2)."""
        return {name: self.candidate.implementation_of(name) for name in self.nodes}

    def __repr__(self) -> str:
        return f"SubArchitecture(nodes={self.nodes})"
