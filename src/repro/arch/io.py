"""JSON (de)serialization for libraries and templates.

ArchEx-style tools consume design-space descriptions from files; this
module provides the interchange format: one JSON document holding the
component types, the implementation library, the template slots with
their per-slot parameters, the candidate edges, and the source/sink
partitions. Contracts are *generated* from this data by
:mod:`repro.spec`, so they are not serialized.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, TextIO, Union

from repro.exceptions import ArchitectureError
from repro.arch.component import Component, ComponentType
from repro.arch.library import Implementation, Library
from repro.arch.template import Template

FORMAT_VERSION = 1


def _encode_float(value: float) -> Union[float, str]:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return value


def _decode_float(value: Union[float, int, str]) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


# -- library ------------------------------------------------------------------


def library_to_dict(library: Library) -> Dict[str, Any]:
    return {
        "implementations": [
            {
                "name": impl.name,
                "type": impl.type_name,
                "cost": impl.cost,
                "attrs": dict(impl.attrs),
            }
            for impl in library
        ]
    }


def library_from_dict(data: Dict[str, Any]) -> Library:
    library = Library()
    for entry in data.get("implementations", []):
        library.add(
            Implementation(
                entry["name"],
                entry["type"],
                float(entry["cost"]),
                **{k: float(v) for k, v in entry.get("attrs", {}).items()},
            )
        )
    return library


# -- template ---------------------------------------------------------------------


def template_to_dict(template: Template) -> Dict[str, Any]:
    types: Dict[str, ComponentType] = {}
    for component in template.components():
        types.setdefault(component.type_name, component.ctype)
    return {
        "name": template.name,
        "types": [
            {"name": t.name, "attributes": list(t.attributes)}
            for t in types.values()
        ],
        "components": [
            {
                "name": c.name,
                "type": c.type_name,
                "max_fan_in": c.max_fan_in,
                "max_fan_out": c.max_fan_out,
                "generated_flow": c.generated_flow,
                "consumed_flow": c.consumed_flow,
                "input_jitter": _encode_float(c.input_jitter),
                "output_jitter": _encode_float(c.output_jitter),
                "weight": c.weight,
                "params": dict(c.params),
            }
            for c in template.components()
        ],
        "edges": [list(edge) for edge in template.edges()],
        "source_types": sorted(template.source_types),
        "sink_types": sorted(template.sink_types),
    }


def template_from_dict(data: Dict[str, Any]) -> Template:
    types = {
        entry["name"]: ComponentType(
            entry["name"], tuple(entry.get("attributes", ()))
        )
        for entry in data.get("types", [])
    }
    template = Template(data.get("name", "template"))
    for entry in data.get("components", []):
        type_name = entry["type"]
        if type_name not in types:
            raise ArchitectureError(
                f"component {entry['name']!r} references undeclared type "
                f"{type_name!r}"
            )
        template.add_component(
            Component(
                entry["name"],
                types[type_name],
                max_fan_in=int(entry.get("max_fan_in", 0)),
                max_fan_out=int(entry.get("max_fan_out", 0)),
                generated_flow=float(entry.get("generated_flow", 0.0)),
                consumed_flow=float(entry.get("consumed_flow", 0.0)),
                input_jitter=_decode_float(entry.get("input_jitter", "inf")),
                output_jitter=_decode_float(entry.get("output_jitter", "inf")),
                weight=float(entry.get("weight", 1.0)),
                params={
                    k: float(v) for k, v in entry.get("params", {}).items()
                },
            )
        )
    for src, dst in data.get("edges", []):
        template.connect(src, dst)
    for type_name in data.get("source_types", []):
        template.mark_source_type(type_name)
    for type_name in data.get("sink_types", []):
        template.mark_sink_type(type_name)
    return template


# -- combined problem documents --------------------------------------------------------


def problem_to_dict(template: Template, library: Library) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "template": template_to_dict(template),
        "library": library_to_dict(library),
    }


def problem_from_dict(data: Dict[str, Any]):
    version = data.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ArchitectureError(
            f"unsupported problem format version {version}"
        )
    return (
        template_from_dict(data["template"]),
        library_from_dict(data["library"]),
    )


def save_problem(template: Template, library: Library, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(problem_to_dict(template, library), handle, indent=2)


def load_problem(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return problem_from_dict(data)
