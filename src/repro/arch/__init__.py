"""Architecture modeling: components, libraries, templates, candidates."""

from repro.arch.component import Component, ComponentType
from repro.arch.library import Implementation, Library
from repro.arch.template import MappingTemplate, Template
from repro.arch.architecture import CandidateArchitecture, SubArchitecture

__all__ = [
    "Component",
    "ComponentType",
    "Implementation",
    "Library",
    "MappingTemplate",
    "Template",
    "CandidateArchitecture",
    "SubArchitecture",
]
