"""Implementation libraries (the paper's ``L = union of L_k``).

Each :class:`Implementation` is a concrete part a component slot of the
matching type can be mapped to, with a cost and the attribute values the
type declares (latency, throughput, ...). A :class:`Library` groups
implementations by type and answers the attribute-ordering queries the
certificate generator needs (``ImplementationSearch``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ArchitectureError
from repro.arch.component import ComponentType
from repro.contracts.viewpoints import AttributeDirection


class Implementation:
    """A concrete library part."""

    __slots__ = ("name", "type_name", "cost", "attrs")

    def __init__(
        self,
        name: str,
        type_name: str,
        cost: float,
        **attrs: float,
    ) -> None:
        if not name:
            raise ArchitectureError("implementation name must be non-empty")
        self.name = name
        self.type_name = type_name
        self.cost = float(cost)
        self.attrs: Dict[str, float] = {k: float(v) for k, v in attrs.items()}

    def attribute(self, key: str) -> float:
        if key == "cost":
            return self.cost
        try:
            return self.attrs[key]
        except KeyError:
            raise ArchitectureError(
                f"implementation {self.name!r} has no attribute {key!r}"
            )

    def has_attribute(self, key: str) -> bool:
        return key == "cost" or key in self.attrs

    def __eq__(self, other) -> bool:
        return isinstance(other, Implementation) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Implementation", self.name))

    def __repr__(self) -> str:
        return f"Implementation({self.name!r}, type={self.type_name!r}, cost={self.cost:g})"


class Library:
    """Implementations grouped by component type."""

    def __init__(self, implementations: Iterable[Implementation] = ()) -> None:
        self._by_type: Dict[str, List[Implementation]] = {}
        self._by_name: Dict[str, Implementation] = {}
        for impl in implementations:
            self.add(impl)

    def add(self, impl: Implementation) -> Implementation:
        if impl.name in self._by_name:
            raise ArchitectureError(
                f"duplicate implementation name {impl.name!r} in library"
            )
        self._by_name[impl.name] = impl
        self._by_type.setdefault(impl.type_name, []).append(impl)
        return impl

    def new(self, name: str, type_name: str, cost: float, **attrs: float) -> Implementation:
        return self.add(Implementation(name, type_name, cost, **attrs))

    # -- lookups ---------------------------------------------------------------

    def implementations_of(self, type_name: str) -> List[Implementation]:
        """Sub-library ``L_k`` for a type (empty list if none)."""
        return list(self._by_type.get(type_name, []))

    def get(self, name: str) -> Implementation:
        try:
            return self._by_name[name]
        except KeyError:
            raise ArchitectureError(f"no implementation named {name!r} in library")

    def types(self) -> List[str]:
        return sorted(self._by_type)

    def validate_against(self, ctype: ComponentType) -> None:
        """Check every implementation of a type provides its attributes."""
        for impl in self.implementations_of(ctype.name):
            for attr in ctype.attributes:
                if not impl.has_attribute(attr):
                    raise ArchitectureError(
                        f"implementation {impl.name!r} of type {ctype.name!r} "
                        f"lacks required attribute {attr!r}"
                    )

    # -- ImplementationSearch support (Algorithm 2, line 8) ------------------------

    def at_least_as_bad(
        self,
        reference: Implementation,
        attribute: str,
        direction: AttributeDirection,
    ) -> List[Implementation]:
        """All implementations of ``reference``'s type whose ``attribute``
        is at least as bad as the reference's (the reference included)."""
        ref_value = reference.attribute(attribute)
        return [
            impl
            for impl in self.implementations_of(reference.type_name)
            if impl.has_attribute(attribute)
            and direction.at_least_as_bad(impl.attribute(attribute), ref_value)
        ]

    # -- misc ----------------------------------------------------------------------

    def __iter__(self) -> Iterator[Implementation]:
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __repr__(self) -> str:
        sizes = {t: len(v) for t, v in sorted(self._by_type.items())}
        return f"Library({sizes})"
