"""Templates and mapping templates (Section II-B, Fig. 2).

A :class:`Template` is the design space skeleton: component slots
(typed nodes) plus the candidate interconnections exploration may pick
from, with designated source and sink type partitions. A
:class:`MappingTemplate` augments it with the implementation library and
owns the decision variables:

* ``e(i, j)``  — binary: candidate edge selected;
* ``m(i, x)``  — binary: slot ``i`` mapped to implementation ``x``;
* ``u(attr, i)`` — continuous: attribute value inherited from the
  selected implementation (pinned by the interconnection contract);
* ``flow(i, j)``, ``time(i, j)``, ``nominal_time(i, j)`` — continuous
  per-edge quantities referenced by the flow and timing contracts.

All variables are created once and cached, so component-level contracts,
system-level contracts, and MILP cuts all talk about the same objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.exceptions import ArchitectureError
from repro.arch.component import Component, ComponentType
from repro.arch.library import Implementation, Library
from repro.expr.terms import Var, binary, continuous
from repro.graph.digraph import DiGraph


class Template:
    """The architecture template ``T = (V_T, E_T)``."""

    def __init__(self, name: str = "template") -> None:
        self.name = name
        self._components: Dict[str, Component] = {}
        self._edges: List[Tuple[str, str]] = []
        self._edge_set: Set[Tuple[str, str]] = set()
        self.source_types: Set[str] = set()
        self.sink_types: Set[str] = set()

    # -- construction -------------------------------------------------------

    def add_component(self, component: Component) -> Component:
        if component.name in self._components:
            raise ArchitectureError(
                f"duplicate component name {component.name!r} in template"
            )
        self._components[component.name] = component
        return component

    def add_components(self, components: Iterable[Component]) -> None:
        for component in components:
            self.add_component(component)

    def connect(self, src: str, dst: str) -> Tuple[str, str]:
        """Declare a candidate connection between two slots."""
        for name in (src, dst):
            if name not in self._components:
                raise ArchitectureError(f"unknown component {name!r}")
        if src == dst:
            raise ArchitectureError(f"self-loop on {src!r} is not allowed")
        edge = (src, dst)
        if edge not in self._edge_set:
            self._edge_set.add(edge)
            self._edges.append(edge)
        return edge

    def connect_all(self, sources: Iterable[str], targets: Iterable[str]) -> None:
        """Candidate edges from every source slot to every target slot."""
        target_list = list(targets)
        for src in sources:
            for dst in target_list:
                self.connect(src, dst)

    def mark_source_type(self, type_name: str) -> None:
        self.source_types.add(type_name)

    def mark_sink_type(self, type_name: str) -> None:
        self.sink_types.add(type_name)

    # -- queries -----------------------------------------------------------------

    def component(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise ArchitectureError(f"unknown component {name!r}")

    def components(self) -> List[Component]:
        return list(self._components.values())

    def components_of_type(self, type_name: str) -> List[Component]:
        return [c for c in self._components.values() if c.type_name == type_name]

    def edges(self) -> List[Tuple[str, str]]:
        return list(self._edges)

    def in_candidates(self, name: str) -> List[str]:
        """Slots with a candidate edge *into* ``name`` (``Pi_{k-1}`` side)."""
        return [src for src, dst in self._edges if dst == name]

    def out_candidates(self, name: str) -> List[str]:
        """Slots with a candidate edge *out of* ``name`` (``Pi_{k+1}`` side)."""
        return [dst for src, dst in self._edges if src == name]

    def source_components(self) -> List[Component]:
        return [c for c in self._components.values() if c.type_name in self.source_types]

    def sink_components(self) -> List[Component]:
        return [c for c in self._components.values() if c.type_name in self.sink_types]

    @property
    def num_components(self) -> int:
        return len(self._components)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def graph(self) -> DiGraph:
        """Template as a typed digraph (labels = component type names)."""
        graph = DiGraph(self.name)
        for component in self._components.values():
            graph.add_node(component.name, label=component.type_name)
        for src, dst in self._edges:
            graph.add_edge(src, dst)
        return graph

    def __repr__(self) -> str:
        return (
            f"Template({self.name!r}, components={self.num_components}, "
            f"candidate_edges={self.num_edges})"
        )


class MappingTemplate:
    """Template + library + decision variables (``T_map`` of the paper)."""

    def __init__(
        self,
        template: Template,
        library: Library,
        flow_bound: Optional[float] = None,
        time_bound: float = 1000.0,
    ) -> None:
        self.template = template
        self.library = library
        #: Upper bound for per-edge flow variables; defaults to the total
        #: flow the sources can generate (needed for finite big-M).
        if flow_bound is None:
            generated = sum(
                c.generated_flow for c in template.components()
            )
            flow_bound = max(generated, 1.0)
        self.flow_bound = float(flow_bound)
        self.time_bound = float(time_bound)

        self._edge_vars: Dict[Tuple[str, str], Var] = {}
        self._mapping_vars: Dict[Tuple[str, str], Var] = {}
        self._attr_vars: Dict[Tuple[str, str], Var] = {}
        self._flow_vars: Dict[Tuple[str, str], Var] = {}
        self._time_vars: Dict[Tuple[str, str], Var] = {}
        self._nominal_vars: Dict[Tuple[str, str], Var] = {}

        for component in template.components():
            impls = library.implementations_of(component.type_name)
            if not impls:
                raise ArchitectureError(
                    f"library provides no implementation for type "
                    f"{component.type_name!r} (component {component.name!r})"
                )
            library.validate_against(component.ctype)
            for impl in impls:
                key = (component.name, impl.name)
                self._mapping_vars[key] = binary(f"m[{component.name}->{impl.name}]")
            for attr in component.ctype.attributes:
                values = [impl.attribute(attr) for impl in impls]
                lb = min(0.0, min(values))
                ub = max(0.0, max(values))
                self._attr_vars[(attr, component.name)] = continuous(
                    f"u[{attr}:{component.name}]", lb, ub
                )
        for src, dst in template.edges():
            self._edge_vars[(src, dst)] = binary(f"e[{src}->{dst}]")

    # -- variable accessors -----------------------------------------------------

    def edge(self, src: str, dst: str) -> Var:
        try:
            return self._edge_vars[(src, dst)]
        except KeyError:
            raise ArchitectureError(f"no candidate edge ({src!r}, {dst!r})")

    def has_edge(self, src: str, dst: str) -> bool:
        return (src, dst) in self._edge_vars

    def mapping(self, component: str, impl: str) -> Var:
        try:
            return self._mapping_vars[(component, impl)]
        except KeyError:
            raise ArchitectureError(
                f"no mapping variable ({component!r} -> {impl!r})"
            )

    def mappings_of(self, component: str) -> List[Tuple[Implementation, Var]]:
        """(implementation, m-var) pairs for a slot."""
        ctype = self.template.component(component).type_name
        return [
            (impl, self._mapping_vars[(component, impl.name)])
            for impl in self.library.implementations_of(ctype)
        ]

    def attribute(self, attr: str, component: str) -> Var:
        try:
            return self._attr_vars[(attr, component)]
        except KeyError:
            raise ArchitectureError(
                f"no attribute variable {attr!r} for component {component!r}"
            )

    def flow(self, src: str, dst: str) -> Var:
        key = (src, dst)
        if key not in self._edge_vars:
            raise ArchitectureError(f"no candidate edge ({src!r}, {dst!r})")
        if key not in self._flow_vars:
            self._flow_vars[key] = continuous(
                f"f[{src}->{dst}]", 0.0, self.flow_bound
            )
        return self._flow_vars[key]

    def time(self, src: str, dst: str) -> Var:
        key = (src, dst)
        if key not in self._edge_vars:
            raise ArchitectureError(f"no candidate edge ({src!r}, {dst!r})")
        if key not in self._time_vars:
            self._time_vars[key] = continuous(
                f"t[{src}->{dst}]", 0.0, self.time_bound
            )
        return self._time_vars[key]

    def nominal_time(self, src: str, dst: str) -> Var:
        key = (src, dst)
        if key not in self._edge_vars:
            raise ArchitectureError(f"no candidate edge ({src!r}, {dst!r})")
        if key not in self._nominal_vars:
            self._nominal_vars[key] = continuous(
                f"tau[{src}->{dst}]", 0.0, self.time_bound
            )
        return self._nominal_vars[key]

    # -- bulk views ------------------------------------------------------------------

    def edge_vars(self) -> Dict[Tuple[str, str], Var]:
        return dict(self._edge_vars)

    def mapping_vars(self) -> Dict[Tuple[str, str], Var]:
        return dict(self._mapping_vars)

    def structural_vars(self) -> List[Var]:
        """All e and m variables (the candidate-defining assignment)."""
        return list(self._edge_vars.values()) + list(self._mapping_vars.values())

    # -- graphs ---------------------------------------------------------------------

    def mapping_graph(self) -> DiGraph:
        """Template graph augmented with implementation nodes and dashed
        mapping edges (Fig. 2 middle picture) — for visualization."""
        graph = self.template.graph()
        for component in self.template.components():
            for impl in self.library.implementations_of(component.type_name):
                impl_node = f"impl:{impl.name}"
                if not graph.has_node(impl_node):
                    graph.add_node(
                        impl_node,
                        label=f"impl:{impl.type_name}",
                        shape="box",
                        display=impl.name,
                    )
                graph.add_edge(component.name, impl_node, style="dashed")
        return graph

    def __repr__(self) -> str:
        return (
            f"MappingTemplate({self.template.name!r}, "
            f"edges={len(self._edge_vars)}, mappings={len(self._mapping_vars)})"
        )
