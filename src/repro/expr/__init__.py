"""Linear/boolean constraint language used by contracts and the encoder."""

from repro.expr.terms import Domain, LinExpr, Var, binary, continuous, integer
from repro.expr.constraints import (
    And,
    BoolAtom,
    BoolConst,
    Comparison,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Sense,
    TRUE,
    conjunction,
    disjunction,
)
from repro.expr.transform import (
    NEGATION_EPS,
    formula_size,
    negate,
    simplify,
    substitute,
    to_nnf,
)
from repro.expr.bounds import expr_interval, require_finite

__all__ = [
    "Domain",
    "LinExpr",
    "Var",
    "binary",
    "continuous",
    "integer",
    "And",
    "BoolAtom",
    "BoolConst",
    "Comparison",
    "FALSE",
    "Formula",
    "Iff",
    "Implies",
    "Not",
    "Or",
    "Sense",
    "TRUE",
    "conjunction",
    "disjunction",
    "NEGATION_EPS",
    "formula_size",
    "negate",
    "simplify",
    "substitute",
    "to_nnf",
    "expr_interval",
    "require_finite",
]
