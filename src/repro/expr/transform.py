"""Structural transforms on formulas: negation, NNF, substitution.

Negating a non-strict linear atom produces a *strict* inequality; over
the rational-coefficient models used here we soundly approximate strict
inequalities with an epsilon margin (:data:`NEGATION_EPS`), which is the
standard practice when discharging such queries to an LP/MILP oracle.
"""

from __future__ import annotations

from typing import Mapping

from repro.exceptions import ExpressionError
from repro.expr.constraints import (
    And,
    BoolAtom,
    BoolConst,
    Comparison,
    FALSE,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Sense,
    TRUE,
    conjunction,
    disjunction,
)
from repro.expr.terms import LinExpr, Number, Var

#: Margin used to turn the strict inequality ``expr > 0`` (arising from
#: the negation of ``expr <= 0``) into the oracle-friendly ``expr >= eps``.
#:
#: The margin must dominate the MILP backend's *integrality tolerance
#: amplified by the big-M constants* (HiGHS accepts binaries within 1e-6
#: of integral, which lets an activation constraint with M ~ 1e3 leak
#: ~1e-3 of slack); otherwise the oracle can fake satisfaction of a
#: strict inequality exactly at a requirement boundary. 1e-2 is safe for
#: models whose variable bounds stay below ~1e4 and whose attribute
#: values are coarser than 0.01.
NEGATION_EPS = 1e-2


def negate_atom(atom: Comparison, eps: float = NEGATION_EPS) -> Formula:
    """Negate a canonical comparison.

    ``not (e <= 0)``  becomes  ``-e <= -eps``  (i.e. ``e >= eps``);
    ``not (e == 0)``  becomes  ``e >= eps  or  e <= -eps``.
    """
    if atom.sense is Sense.LE:
        return Comparison((-atom.expr) + eps, Sense.LE)
    # e == 0  ->  e >= eps  or  e <= -eps
    ge_branch = Comparison((-atom.expr) + eps, Sense.LE)
    le_branch = Comparison(atom.expr + eps, Sense.LE)
    return Or(ge_branch, le_branch)


def to_nnf(formula: Formula, negated: bool = False, eps: float = NEGATION_EPS) -> Formula:
    """Rewrite into negation-normal form.

    The result contains only And/Or over Comparison, BoolAtom,
    Not(BoolAtom), and boolean constants.
    """
    if isinstance(formula, BoolConst):
        return BoolConst(formula.value != negated)
    if isinstance(formula, Comparison):
        return negate_atom(formula, eps) if negated else formula
    if isinstance(formula, BoolAtom):
        return Not(formula) if negated else formula
    if isinstance(formula, Not):
        return to_nnf(formula.child, not negated, eps)
    if isinstance(formula, And):
        children = [to_nnf(c, negated, eps) for c in formula.children]
        return disjunction(children) if negated else conjunction(children)
    if isinstance(formula, Or):
        children = [to_nnf(c, negated, eps) for c in formula.children]
        return conjunction(children) if negated else disjunction(children)
    if isinstance(formula, Implies):
        rewritten = Or(Not(formula.antecedent), formula.consequent)
        return to_nnf(rewritten, negated, eps)
    if isinstance(formula, Iff):
        left, right = formula.left, formula.right
        rewritten = And(Or(Not(left), right), Or(Not(right), left))
        return to_nnf(rewritten, negated, eps)
    raise ExpressionError(f"unsupported formula node {type(formula).__name__}")


def negate(formula: Formula, eps: float = NEGATION_EPS) -> Formula:
    """Return the NNF of ``not formula``."""
    return to_nnf(formula, negated=True, eps=eps)


def substitute(formula: Formula, assignment: Mapping[Var, Number]) -> Formula:
    """Fix a subset of variables and constant-fold the result."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Comparison):
        return formula.substitute(assignment)
    if isinstance(formula, BoolAtom):
        if formula.var in assignment:
            return TRUE if float(assignment[formula.var]) >= 0.5 else FALSE
        return formula
    if isinstance(formula, Not):
        child = substitute(formula.child, assignment)
        if isinstance(child, BoolConst):
            return BoolConst(not child.value)
        return Not(child)
    if isinstance(formula, And):
        return conjunction(substitute(c, assignment) for c in formula.children)
    if isinstance(formula, Or):
        return disjunction(substitute(c, assignment) for c in formula.children)
    if isinstance(formula, Implies):
        antecedent = substitute(formula.antecedent, assignment)
        consequent = substitute(formula.consequent, assignment)
        if isinstance(antecedent, BoolConst):
            return consequent if antecedent.value else TRUE
        if isinstance(consequent, BoolConst) and consequent.value:
            return TRUE
        return Implies(antecedent, consequent)
    if isinstance(formula, Iff):
        left = substitute(formula.left, assignment)
        right = substitute(formula.right, assignment)
        if isinstance(left, BoolConst):
            return right if left.value else simplify(Not(right))
        if isinstance(right, BoolConst):
            return left if right.value else simplify(Not(left))
        return Iff(left, right)
    raise ExpressionError(f"unsupported formula node {type(formula).__name__}")


def simplify(formula: Formula) -> Formula:
    """Light constant folding (no NNF rewriting)."""
    return substitute(formula, {})


def formula_size(formula: Formula) -> int:
    """Number of nodes in the formula tree (a rough complexity measure)."""
    if isinstance(formula, (BoolConst, Comparison, BoolAtom)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.child)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(c) for c in formula.children)
    if isinstance(formula, (Implies, Iff)):
        return 1 + sum(formula_size(c) for c in formula.children)
    raise ExpressionError(f"unsupported formula node {type(formula).__name__}")
