"""Interval arithmetic over linear expressions.

Used by the big-M encoder to derive tight activation constants from
variable bounds instead of falling back to a blanket large constant.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.exceptions import BoundsError
from repro.expr.terms import LinExpr, Var


def var_interval(var: Var) -> Tuple[float, float]:
    """Return the (lb, ub) interval of a variable."""
    return (var.lb, var.ub)


def expr_interval(expr: LinExpr) -> Tuple[float, float]:
    """Return the tightest interval containing all values of ``expr``.

    Infinite variable bounds propagate to infinite interval ends.
    """
    lo = hi = expr.constant
    for var, coef in expr.coeffs.items():
        if coef >= 0:
            term_lo, term_hi = coef * var.lb, coef * var.ub
        else:
            term_lo, term_hi = coef * var.ub, coef * var.lb
        lo += term_lo
        hi += term_hi
        if math.isnan(lo) or math.isnan(hi):
            raise BoundsError(
                f"indeterminate bound for {var.name!r} (0 * inf); give the "
                "variable finite bounds"
            )
    return (lo, hi)


def expr_upper_bound(expr: LinExpr, default: float = math.inf) -> float:
    """Upper bound of ``expr``; ``default`` when unbounded."""
    hi = expr_interval(expr)[1]
    return hi if math.isfinite(hi) else default

def expr_lower_bound(expr: LinExpr, default: float = -math.inf) -> float:
    """Lower bound of ``expr``; ``default`` when unbounded."""
    lo = expr_interval(expr)[0]
    return lo if math.isfinite(lo) else default


def require_finite(expr: LinExpr) -> Tuple[float, float]:
    """Interval of ``expr``, raising :class:`BoundsError` if unbounded."""
    lo, hi = expr_interval(expr)
    if not (math.isfinite(lo) and math.isfinite(hi)):
        unbounded = [v.name for v in expr.coeffs if not v.has_finite_bounds]
        raise BoundsError(
            "expression has unbounded range; variables without finite bounds: "
            + ", ".join(sorted(unbounded))
        )
    return (lo, hi)
