"""Variables and linear expressions.

This module provides the arithmetic half of the constraint language used
throughout the package: typed decision variables (:class:`Var`) and
affine combinations of them (:class:`LinExpr`). Comparisons between
expressions produce :class:`repro.expr.constraints.Comparison` atoms.
"""

from __future__ import annotations

import enum
import itertools
import math
from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.exceptions import ExpressionError

Number = Union[int, float]

_var_counter = itertools.count()


class Domain(enum.Enum):
    """Domain of a decision variable."""

    CONTINUOUS = "continuous"
    INTEGER = "integer"
    BINARY = "binary"

    @property
    def is_integral(self) -> bool:
        return self in (Domain.INTEGER, Domain.BINARY)


class Var:
    """A decision variable with a domain and (optional) finite bounds.

    Variables compare by identity; two variables with the same name are
    distinct objects. Names are kept unique per-variable for readable
    output but are not used for identity.
    """

    __slots__ = ("name", "domain", "lb", "ub", "_uid", "__weakref__")

    def __init__(
        self,
        name: str,
        domain: Domain = Domain.CONTINUOUS,
        lb: Number = -math.inf,
        ub: Number = math.inf,
    ) -> None:
        if not name:
            raise ExpressionError("variable name must be non-empty")
        if domain is Domain.BINARY:
            lb, ub = max(0.0, lb), min(1.0, ub)
        if lb > ub:
            raise ExpressionError(
                f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}"
            )
        self.name = name
        self.domain = domain
        self.lb = float(lb)
        self.ub = float(ub)
        self._uid = next(_var_counter)

    # -- classification ------------------------------------------------

    @property
    def is_binary(self) -> bool:
        return self.domain is Domain.BINARY

    @property
    def is_integral(self) -> bool:
        return self.domain.is_integral

    @property
    def has_finite_bounds(self) -> bool:
        return math.isfinite(self.lb) and math.isfinite(self.ub)

    # -- arithmetic (delegates to LinExpr) ------------------------------

    def to_expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other):
        return self.to_expr() + other

    def __radd__(self, other):
        return self.to_expr() + other

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return (-self.to_expr()) + other

    def __mul__(self, other):
        return self.to_expr() * other

    def __rmul__(self, other):
        return self.to_expr() * other

    def __neg__(self):
        return -self.to_expr()

    def __truediv__(self, other):
        return self.to_expr() / other

    # -- comparisons -----------------------------------------------------

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    def eq(self, other):
        """Equality constraint (``==`` is reserved for identity)."""
        return self.to_expr().eq(other)

    # -- misc -------------------------------------------------------------

    def __hash__(self) -> int:
        return hash(self._uid)

    def __eq__(self, other) -> bool:
        return self is other

    def __repr__(self) -> str:
        return f"Var({self.name!r}, {self.domain.value}, [{self.lb}, {self.ub}])"

    def __str__(self) -> str:
        return self.name


def binary(name: str) -> Var:
    """Create a binary (0/1) variable."""
    return Var(name, Domain.BINARY, 0, 1)


def integer(name: str, lb: Number = -math.inf, ub: Number = math.inf) -> Var:
    """Create an integer variable."""
    return Var(name, Domain.INTEGER, lb, ub)


def continuous(name: str, lb: Number = -math.inf, ub: Number = math.inf) -> Var:
    """Create a continuous variable."""
    return Var(name, Domain.CONTINUOUS, lb, ub)


_COEF_EPS = 1e-12


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``.

    Instances are immutable; arithmetic returns new expressions.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(
        self,
        coeffs: Optional[Mapping[Var, Number]] = None,
        constant: Number = 0.0,
    ) -> None:
        cleaned: Dict[Var, float] = {}
        if coeffs:
            for var, coef in coeffs.items():
                if not isinstance(var, Var):
                    raise ExpressionError(f"expected Var key, got {type(var).__name__}")
                coef = float(coef)
                if abs(coef) > _COEF_EPS:
                    cleaned[var] = coef
        self.coeffs: Dict[Var, float] = cleaned
        self.constant = float(constant)

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def coerce(value: Union["LinExpr", Var, Number]) -> "LinExpr":
        """Convert a var or number into a LinExpr (idempotent on LinExpr)."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, Var):
            return value.to_expr()
        if isinstance(value, (int, float)):
            return LinExpr({}, value)
        raise ExpressionError(
            f"cannot interpret {type(value).__name__} as a linear expression"
        )

    @staticmethod
    def sum(terms: Iterable[Union["LinExpr", Var, Number]]) -> "LinExpr":
        """Sum an iterable of expressions/vars/numbers efficiently."""
        coeffs: Dict[Var, float] = {}
        constant = 0.0
        for term in terms:
            expr = LinExpr.coerce(term)
            constant += expr.constant
            for var, coef in expr.coeffs.items():
                coeffs[var] = coeffs.get(var, 0.0) + coef
        return LinExpr(coeffs, constant)

    # -- queries ------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    def variables(self) -> Tuple[Var, ...]:
        return tuple(self.coeffs)

    def coefficient(self, var: Var) -> float:
        return self.coeffs.get(var, 0.0)

    def evaluate(self, assignment: Mapping[Var, Number]) -> float:
        """Evaluate under a (complete, for the vars used here) assignment."""
        total = self.constant
        for var, coef in self.coeffs.items():
            if var not in assignment:
                raise ExpressionError(f"no value assigned to variable {var.name!r}")
            total += coef * float(assignment[var])
        return total

    def substitute(self, assignment: Mapping[Var, Number]) -> "LinExpr":
        """Replace any subset of variables by fixed values."""
        coeffs: Dict[Var, float] = {}
        constant = self.constant
        for var, coef in self.coeffs.items():
            if var in assignment:
                constant += coef * float(assignment[var])
            else:
                coeffs[var] = coef
        return LinExpr(coeffs, constant)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other):
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for var, coef in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0.0) + coef
        return LinExpr(coeffs, self.constant + other.constant)

    def __radd__(self, other):
        return self.__add__(other)

    def __sub__(self, other):
        return self.__add__(-LinExpr.coerce(other))

    def __rsub__(self, other):
        return (-self).__add__(other)

    def __neg__(self):
        return LinExpr({v: -c for v, c in self.coeffs.items()}, -self.constant)

    def __mul__(self, scalar):
        if isinstance(scalar, (LinExpr, Var)):
            raise ExpressionError("only multiplication by a scalar is supported")
        scalar = float(scalar)
        return LinExpr(
            {v: c * scalar for v, c in self.coeffs.items()}, self.constant * scalar
        )

    def __rmul__(self, scalar):
        return self.__mul__(scalar)

    def __truediv__(self, scalar):
        if isinstance(scalar, (LinExpr, Var)):
            raise ExpressionError("division by an expression is not linear")
        return self.__mul__(1.0 / float(scalar))

    # -- comparisons (produce constraint atoms) --------------------------------

    def __le__(self, other):
        from repro.expr.constraints import Comparison, Sense

        return Comparison(self - LinExpr.coerce(other), Sense.LE)

    def __ge__(self, other):
        from repro.expr.constraints import Comparison, Sense

        return Comparison(LinExpr.coerce(other) - self, Sense.LE)

    def eq(self, other):
        from repro.expr.constraints import Comparison, Sense

        return Comparison(self - LinExpr.coerce(other), Sense.EQ)

    # -- misc --------------------------------------------------------------------

    def __hash__(self):
        return hash((frozenset(self.coeffs.items()), self.constant))

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.constant == other.constant

    def __repr__(self) -> str:
        return f"LinExpr({self})"

    def __str__(self) -> str:
        parts = []
        for var, coef in sorted(self.coeffs.items(), key=lambda kv: kv[0].name):
            if coef == 1.0:
                parts.append(f"+ {var.name}")
            elif coef == -1.0:
                parts.append(f"- {var.name}")
            elif coef < 0:
                parts.append(f"- {abs(coef):g}*{var.name}")
            else:
                parts.append(f"+ {coef:g}*{var.name}")
        if self.constant or not parts:
            sign = "-" if self.constant < 0 else "+"
            parts.append(f"{sign} {abs(self.constant):g}")
        text = " ".join(parts)
        return text[2:] if text.startswith("+ ") else text
