"""Boolean constraint formulas over linear-arithmetic atoms.

The formula language is the one needed by the paper's contract theory:
conjunction, disjunction, negation, implication and bi-implication over

* linear comparisons (``expr <= 0`` / ``expr == 0`` in canonical form), and
* boolean atoms backed by binary decision variables.

Formulas are immutable trees. Structural helpers (negation-normal form,
substitution, simplification) live in :mod:`repro.expr.transform`.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Iterator, Mapping, Tuple, Union

from repro.exceptions import ExpressionError
from repro.expr.terms import LinExpr, Number, Var

#: Absolute tolerance when evaluating comparisons on concrete values.
EVAL_TOL = 1e-6


class Sense(enum.Enum):
    """Comparison sense for a canonical atom ``expr SENSE 0``."""

    LE = "<="
    EQ = "=="


class Formula:
    """Base class for boolean formulas. Supports ``&``, ``|``, ``~``."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, _check(other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, _check(other))

    def __invert__(self) -> "Formula":
        return Not(self)

    def implies(self, other: "Formula") -> "Formula":
        return Implies(self, _check(other))

    def iff(self, other: "Formula") -> "Formula":
        return Iff(self, _check(other))

    # Subclasses provide: variables(), evaluate(), children, __eq__/__hash__.

    def variables(self) -> FrozenSet[Var]:
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        raise NotImplementedError

    def atoms(self) -> Iterator["Formula"]:
        """Yield all Comparison/BoolAtom leaves (with repetition)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, (Comparison, BoolAtom, BoolConst)):
                yield node
            else:
                stack.extend(node.children)  # type: ignore[attr-defined]

    def __bool__(self) -> bool:
        raise ExpressionError(
            "formulas have no implicit truth value; use evaluate() or the "
            "feasibility oracle"
        )


def _check(value: object) -> Formula:
    if not isinstance(value, Formula):
        raise ExpressionError(
            f"expected a Formula, got {type(value).__name__}; wrap comparisons "
            "with <=, >=, or .eq()"
        )
    return value


class BoolConst(Formula):
    """Constant true/false formula."""

    __slots__ = ("value",)

    def __init__(self, value: bool) -> None:
        self.value = bool(value)

    def variables(self) -> FrozenSet[Var]:
        return frozenset()

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, BoolConst) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("BoolConst", self.value))

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Comparison(Formula):
    """Canonical linear atom ``expr <= 0`` or ``expr == 0``."""

    __slots__ = ("expr", "sense")

    def __init__(self, expr: LinExpr, sense: Sense) -> None:
        if not isinstance(expr, LinExpr):
            raise ExpressionError("Comparison expects a LinExpr")
        self.expr = expr
        self.sense = sense

    def variables(self) -> FrozenSet[Var]:
        return frozenset(self.expr.coeffs)

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.sense is Sense.LE:
            return value <= EVAL_TOL
        return abs(value) <= EVAL_TOL

    def substitute(self, assignment: Mapping[Var, Number]) -> Formula:
        expr = self.expr.substitute(assignment)
        if expr.is_constant:
            if self.sense is Sense.LE:
                return TRUE if expr.constant <= EVAL_TOL else FALSE
            return TRUE if abs(expr.constant) <= EVAL_TOL else FALSE
        return Comparison(expr, self.sense)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Comparison)
            and self.sense is other.sense
            and self.expr == other.expr
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.expr, self.sense))

    def __repr__(self) -> str:
        return f"({self.expr} {self.sense.value} 0)"


class BoolAtom(Formula):
    """A boolean atom backed by a binary decision variable.

    Truth corresponds to the variable taking value 1.
    """

    __slots__ = ("var",)

    def __init__(self, var: Var) -> None:
        if not var.is_binary:
            raise ExpressionError(
                f"BoolAtom requires a binary variable, got {var!r}"
            )
        self.var = var

    def variables(self) -> FrozenSet[Var]:
        return frozenset((self.var,))

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        if self.var not in assignment:
            raise ExpressionError(f"no value assigned to {self.var.name!r}")
        return float(assignment[self.var]) >= 0.5

    def __eq__(self, other) -> bool:
        return isinstance(other, BoolAtom) and self.var is other.var

    def __hash__(self) -> int:
        return hash(("BoolAtom", self.var))

    def __repr__(self) -> str:
        return f"atom({self.var.name})"


class _NaryOp(Formula):
    """Shared machinery for And/Or: flattening, identity, hashing."""

    __slots__ = ("children",)

    _symbol = "?"

    def __init__(self, *children: Formula) -> None:
        flat = []
        for child in children:
            _check(child)
            if isinstance(child, type(self)):
                flat.extend(child.children)
            else:
                flat.append(child)
        if not flat:
            raise ExpressionError(f"{type(self).__name__} needs at least one child")
        self.children: Tuple[Formula, ...] = tuple(flat)

    def variables(self) -> FrozenSet[Var]:
        result: FrozenSet[Var] = frozenset()
        for child in self.children:
            result |= child.variables()
        return result

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and self.children == other.children

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.children))

    def __repr__(self) -> str:
        inner = f" {self._symbol} ".join(map(repr, self.children))
        return f"({inner})"


class And(_NaryOp):
    """Conjunction."""

    __slots__ = ()
    _symbol = "&"

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return all(child.evaluate(assignment) for child in self.children)


class Or(_NaryOp):
    """Disjunction."""

    __slots__ = ()
    _symbol = "|"

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return any(child.evaluate(assignment) for child in self.children)


class Not(Formula):
    """Negation."""

    __slots__ = ("child",)

    def __init__(self, child: Formula) -> None:
        self.child = _check(child)

    @property
    def children(self) -> Tuple[Formula, ...]:
        return (self.child,)

    def variables(self) -> FrozenSet[Var]:
        return self.child.variables()

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return not self.child.evaluate(assignment)

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and self.child == other.child

    def __hash__(self) -> int:
        return hash(("Not", self.child))

    def __repr__(self) -> str:
        return f"~{self.child!r}"


class Implies(Formula):
    """Implication ``antecedent -> consequent``."""

    __slots__ = ("antecedent", "consequent")

    def __init__(self, antecedent: Formula, consequent: Formula) -> None:
        self.antecedent = _check(antecedent)
        self.consequent = _check(consequent)

    @property
    def children(self) -> Tuple[Formula, Formula]:
        return (self.antecedent, self.consequent)

    def variables(self) -> FrozenSet[Var]:
        return self.antecedent.variables() | self.consequent.variables()

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return (not self.antecedent.evaluate(assignment)) or self.consequent.evaluate(
            assignment
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Implies)
            and self.antecedent == other.antecedent
            and self.consequent == other.consequent
        )

    def __hash__(self) -> int:
        return hash(("Implies", self.antecedent, self.consequent))

    def __repr__(self) -> str:
        return f"({self.antecedent!r} -> {self.consequent!r})"


class Iff(Formula):
    """Bi-implication ``left <-> right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Formula, right: Formula) -> None:
        self.left = _check(left)
        self.right = _check(right)

    @property
    def children(self) -> Tuple[Formula, Formula]:
        return (self.left, self.right)

    def variables(self) -> FrozenSet[Var]:
        return self.left.variables() | self.right.variables()

    def evaluate(self, assignment: Mapping[Var, Number]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Iff)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("Iff", self.left, self.right))

    def __repr__(self) -> str:
        return f"({self.left!r} <-> {self.right!r})"


FormulaLike = Union[Formula]


def conjunction(formulas) -> Formula:
    """And together an iterable of formulas; empty iterable gives TRUE."""
    items = [f for f in formulas if not (isinstance(f, BoolConst) and f.value)]
    if any(isinstance(f, BoolConst) and not f.value for f in items):
        return FALSE
    if not items:
        return TRUE
    if len(items) == 1:
        return items[0]
    return And(*items)


def disjunction(formulas) -> Formula:
    """Or together an iterable of formulas; empty iterable gives FALSE."""
    items = [f for f in formulas if not (isinstance(f, BoolConst) and not f.value)]
    if any(isinstance(f, BoolConst) and f.value for f in items):
        return TRUE
    if not items:
        return FALSE
    if len(items) == 1:
        return items[0]
    return Or(*items)
