"""Ablation — the value of implementation widening (``L_g+``).

Algorithm 2 widens each invalid implementation choice to every library
entry at least as bad in the violated viewpoint's attribute. This bench
isolates that lever: isomorphism + decomposition stay on, widening is
toggled. Expected shape: identical optima, but the widened certificates
prune dominated implementation combinations wholesale, so the unwidened
run needs strictly more iterations as soon as the library has more than
a couple of entries per type.
"""

import time

import pytest

from repro.casestudies import epn, rpl
from repro.explore import ContrArcExplorer
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import format_seconds, render_table

from benchmarks.conftest import exploration_record, report, scenario_time_limit

CASES = {
    "rpl(n=1)": lambda: rpl.build_problem(1),
    "rpl(n=2)": lambda: rpl.build_problem(2),
    "epn(1,0,0)": lambda: epn.build_problem(1, 0, 0),
    "epn(1,1,0)": lambda: epn.build_problem(1, 1, 0),
}
_RESULTS = {}


def _run(case, widen):
    mt, spec = CASES[case]()
    return ContrArcExplorer(
        mt,
        spec,
        widen_implementations=widen,
        max_iterations=20000,
        time_limit=scenario_time_limit(),
    ).explore()


@pytest.mark.parametrize("case", list(CASES), ids=str)
@pytest.mark.parametrize("widen", [True, False], ids=["widened", "exact"])
def test_ablation_widening(benchmark, case, widen):
    started = time.perf_counter()
    result = benchmark.pedantic(_run, args=(case, widen), rounds=1, iterations=1)
    _RESULTS.setdefault(case, {})[widen] = (result, time.perf_counter() - started)
    assert result.status in (
        ExplorationStatus.OPTIMAL,
        ExplorationStatus.TIME_LIMIT,
    )


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    yield
    _render_report(results_dir)


def _render_report(results_dir):
    headers = [
        "case",
        "widened time",
        "widened iters",
        "exact time",
        "exact iters",
        "iter ratio",
    ]
    rows = []
    for case, entries in _RESULTS.items():
        if True not in entries or False not in entries:
            continue
        widened, w_time = entries[True]
        exact, e_time = entries[False]
        both_done = all(
            r.status is ExplorationStatus.OPTIMAL for r in (widened, exact)
        )
        if both_done:
            assert widened.cost == pytest.approx(exact.cost)
            # One iteration of slack: when the two runs finish near each
            # other, which co-optimal MILP vertex the solver reports (and
            # hence the exact trajectory length) varies across
            # scipy/HiGHS builds, so strict <= is host-dependent.
            assert (
                widened.stats.num_iterations
                <= exact.stats.num_iterations + 1
            )
        ratio = (
            f"{exact.stats.num_iterations / widened.stats.num_iterations:.1f}x"
            if widened.stats.num_iterations
            else "-"
        )
        rows.append(
            [
                case,
                format_seconds(w_time),
                widened.stats.num_iterations,
                format_seconds(e_time),
                exact.stats.num_iterations,
                ratio,
            ]
        )
    text = render_table(
        headers, rows, title="Ablation - implementation widening (L_g+)"
    )
    data = {
        case: {
            ("widened" if widen else "exact"): exploration_record(result, elapsed)
            for widen, (result, elapsed) in entries.items()
        }
        for case, entries in _RESULTS.items()
    }
    report(results_dir, "ablation_widening.txt", text, data=data)
