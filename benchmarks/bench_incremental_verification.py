"""Perf — dependency-sliced incremental verification vs from-scratch.

Three arms per case, every arm bit-identical in status, cost and
iteration trajectory (pinned by
``tests/test_explore/test_incremental_verification.py`` and re-asserted
here):

* ``scratch-cold``  — ``incremental_verify=False``, fresh oracle: every
  (viewpoint, path) pair substituted, composed, hashed and solved anew
  each iteration (the ``--no-incremental`` verification behaviour).
* ``sliced-cold``   — dependency-sliced walk, fresh oracle: unchanged
  slices carry verdicts forward inside the run; provenance counts show
  how much of the plan that covers from a cold start.
* ``sliced-warm``   — dependency-sliced walk with the oracle warmed by
  one identical prior run: the sweep/CI re-verification scenario (a
  shared ``--cache`` SQLite file across jobs, a resumed sweep, a
  re-executed grid cell). This is the headline arm: verification should
  be several times faster than ``scratch-cold`` with the carried +
  cache-hit share of the plan well above 40%.

The headline metric is the *verification phase* (``refinement_time``):
on these templates the candidate MILP dominates total wall-clock, so
end-to-end speedup is reported for context but bounded by Amdahl.
No hard timing assertions (CI runners are too noisy) — the reuse
fractions, which are deterministic, are asserted instead.
"""

import time

import pytest

from repro.casestudies import epn, rpl
from repro.explore import ContrArcExplorer
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import format_seconds, render_table
from repro.runtime.oracle import OracleCache

from benchmarks.conftest import report, scenario_time_limit

#: ISSUE-pinned cases: the Fig. 5 RPL n=3 grid and the Table II EPN
#: (2,1,1) template on its decomposition arm (isomorphism off).
CASES = {
    "rpl-n3": (lambda: rpl.build_problem(3, 3), {}),
    "epn-2,1,1-decomp": (
        lambda: epn.build_problem(2, 1, 1),
        {"use_isomorphism": False},
    ),
}

_RESULTS = {}


def _explore(builder, engine, incremental_verify, oracle):
    mapping_template, specification = builder()
    started = time.perf_counter()
    result = ContrArcExplorer(
        mapping_template,
        specification,
        incremental_verify=incremental_verify,
        oracle=oracle,
        max_iterations=2000,
        time_limit=scenario_time_limit(),
        **engine,
    ).explore()
    return result, time.perf_counter() - started


def _run_case(name):
    builder, engine = CASES[name]
    arms = {}
    arms["scratch-cold"] = _explore(builder, engine, False, OracleCache())
    arms["sliced-cold"] = _explore(builder, engine, True, OracleCache())
    warm = OracleCache()
    _explore(builder, engine, True, warm)  # warm-up run, not reported
    hits_before = warm.stats.hits
    arms["sliced-warm"] = _explore(builder, engine, True, warm)
    arms["sliced-warm"][0].stats.oracle_cache = {
        "hits": warm.stats.hits - hits_before
    }
    return arms


@pytest.mark.parametrize("case", sorted(CASES), ids=str)
def test_case(benchmark, case):
    arms = benchmark.pedantic(_run_case, args=(case,), rounds=1, iterations=1)
    _RESULTS[case] = arms
    fingerprints = {
        arm: (
            result.status,
            round(result.cost, 9),
            result.stats.num_iterations,
        )
        for arm, (result, _) in arms.items()
    }
    assert len(set(fingerprints.values())) == 1, (
        f"arms diverged: {fingerprints}"
    )
    assert arms["scratch-cold"][0].status is ExplorationStatus.OPTIMAL
    # Reuse is deterministic: the warm re-verification arm must answer
    # well over 40% of its plan without a fresh solve (carried slices
    # plus oracle-served pairs), the ISSUE's acceptance floor.
    verification = arms["sliced-warm"][0].stats.verification
    reused = verification["carried"] + verification["cache_hit"]
    assert reused / verification["checks"] >= 0.4, verification
    # The scratch arm must record no provenance at all.
    assert arms["scratch-cold"][0].stats.verification is None


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    yield
    _render_report(results_dir)


def _arm_record(result, elapsed):
    stats = result.stats
    record = {
        "status": result.status.value,
        "cost": result.cost,
        "wall_clock": round(elapsed, 4),
        "iterations": stats.num_iterations,
        "refinement_time": round(stats.refinement_time, 4),
        "milp_time": round(stats.milp_time, 4),
    }
    if stats.verification is not None:
        record["verification"] = dict(stats.verification)
    return record


def _render_report(results_dir):
    if not _RESULTS:
        return
    rows = []
    data = {}
    for case in sorted(_RESULTS):
        arms = _RESULTS[case]
        baseline = arms["scratch-cold"][0].stats.refinement_time
        data[case] = {
            arm: _arm_record(result, elapsed)
            for arm, (result, elapsed) in arms.items()
        }
        for arm in ("scratch-cold", "sliced-cold", "sliced-warm"):
            result, elapsed = arms[arm]
            verification = result.stats.verification
            if verification:
                total = verification["checks"]
                reused = verification["carried"] + verification["cache_hit"]
                reuse = f"{100.0 * reused / total:.0f}%"
            else:
                reuse = "-"
            refinement = result.stats.refinement_time
            speedup = baseline / refinement if refinement else float("inf")
            data[case][arm]["verify_speedup"] = round(speedup, 2)
            rows.append(
                [
                    case,
                    arm,
                    format_seconds(elapsed),
                    format_seconds(refinement),
                    f"{speedup:.1f}x",
                    reuse,
                    result.stats.num_iterations,
                ]
            )
    text = render_table(
        ["case", "arm", "wall", "verify", "verify speedup", "reused", "iters"],
        rows,
        title="Perf - dependency-sliced incremental verification",
    )
    report(results_dir, "incremental_verification.txt", text, data=data)
