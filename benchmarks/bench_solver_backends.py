"""Ablation — native branch-and-bound vs scipy/HiGHS MILP backend.

The paper solves its MILPs with Gurobi; this repo ships two
interchangeable substitutes. This bench runs identical small
explorations on both and checks they agree on the optimum, quantifying
the cost of the pure-Python fallback.
"""

import time

import pytest

from repro.casestudies import rpl
from repro.explore import ContrArcExplorer
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import format_seconds, render_table
from repro.solver.feasibility import BACKENDS

from benchmarks.conftest import exploration_record, report, scenario_time_limit

_RESULTS = {}


def _run(backend):
    # Single-line RPL with a mild deadline: small enough for the native
    # simplex, still needs a few certificate iterations.
    mt, spec = rpl.build_problem(1, deadline=46.0)
    return ContrArcExplorer(
        mt,
        spec,
        backend=backend,
        max_iterations=500,
        time_limit=scenario_time_limit(),
    ).explore()


@pytest.mark.parametrize("backend", sorted(BACKENDS), ids=str)
def test_backend(benchmark, backend):
    started = time.perf_counter()
    result = benchmark.pedantic(_run, args=(backend,), rounds=1, iterations=1)
    _RESULTS[backend] = (result, time.perf_counter() - started)
    assert result.status is ExplorationStatus.OPTIMAL


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    yield
    _render_report(results_dir)


def _render_report(results_dir):
    if len(_RESULTS) < 2:
        return
    costs = {round(r.cost, 6) for r, _ in _RESULTS.values()}
    assert len(costs) == 1, f"backends disagree: {costs}"
    rows = [
        [name, format_seconds(elapsed), result.stats.num_iterations,
         f"{result.cost:g}"]
        for name, (result, elapsed) in sorted(_RESULTS.items())
    ]
    text = render_table(
        ["backend", "time", "iterations", "cost"],
        rows,
        title="Ablation - MILP backend (Gurobi stand-ins)",
    )
    data = {
        name: exploration_record(result, elapsed)
        for name, (result, elapsed) in _RESULTS.items()
    }
    report(results_dir, "solver_backends.txt", text, data=data)
