"""Substrate bench — VF2 embedding enumeration vs networkx.

The certificate generator calls the matcher once per violation with a
path-shaped pattern and the detached template as the host (the DotMotif
role in the paper's tool chain). This bench times our matcher against
networkx's DiGraphMatcher on exactly that workload and asserts both
enumerate the same number of embeddings.
"""

import networkx as nx
import pytest

from repro.casestudies import epn, rpl
from repro.graph.digraph import DiGraph
from repro.graph.isomorphism import find_embeddings

_COUNTS = {}


def _epn_host():
    mt, _ = epn.build_problem(2, 2, 1)
    return mt.template.graph()


def _rpl_host():
    mt, _ = rpl.build_problem(3, 2)
    return mt.template.graph()


def _route_pattern(host, labels):
    pattern = DiGraph("pattern")
    previous = None
    for index, label in enumerate(labels):
        node = f"p{index}"
        pattern.add_node(node, label=label)
        if previous is not None:
            pattern.add_edge(previous, node)
        previous = node
    return pattern


EPN_LABELS = ["generator", "ac_bus", "ru", "dc_bus", "load"]
RPL_LABELS = ["source", "conveyor", "machine_a", "conveyor", "machine_a",
              "conveyor", "sink"]

CASES = {
    "epn(2,2,1)-route": (_epn_host, EPN_LABELS),
    "rpl(3,2)-line": (_rpl_host, RPL_LABELS),
}


def _to_nx(graph):
    out = nx.DiGraph()
    for node in graph.nodes():
        out.add_node(node, label=graph.label(node))
    out.add_edges_from(graph.edges())
    return out


@pytest.mark.parametrize("case", list(CASES), ids=str)
def test_vf2_ours(benchmark, case):
    build_host, labels = CASES[case]
    host = build_host()
    pattern = _route_pattern(host, labels)
    embeddings = benchmark(find_embeddings, host, pattern)
    _COUNTS.setdefault(case, {})["ours"] = len(embeddings)
    assert embeddings


@pytest.mark.parametrize("case", list(CASES), ids=str)
def test_vf2_networkx(benchmark, case):
    build_host, labels = CASES[case]
    host = _to_nx(build_host())
    pattern = _to_nx(_route_pattern(DiGraph(), labels)) if False else None
    # Build the pattern directly in networkx form.
    pat = nx.DiGraph()
    previous = None
    for index, label in enumerate(labels):
        node = f"p{index}"
        pat.add_node(node, label=label)
        if previous is not None:
            pat.add_edge(previous, node)
        previous = node

    def enumerate_nx():
        matcher = nx.algorithms.isomorphism.DiGraphMatcher(
            host, pat, node_match=lambda a, b: a["label"] == b["label"]
        )
        return sum(1 for _ in matcher.subgraph_monomorphisms_iter())

    count = benchmark(enumerate_nx)
    _COUNTS.setdefault(case, {})["networkx"] = count


@pytest.fixture(scope="module", autouse=True)
def _verify_counts():
    yield
    for case, counts in _COUNTS.items():
        if "ours" in counts and "networkx" in counts:
            assert counts["ours"] == counts["networkx"], (case, counts)
