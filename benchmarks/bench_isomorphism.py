"""Substrate bench — VF2 embedding enumeration vs networkx.

The certificate generator calls the matcher once per violation with a
path-shaped pattern and the detached template as the host (the DotMotif
role in the paper's tool chain). This bench times our matcher against
networkx's DiGraphMatcher on exactly that workload and asserts both
enumerate the same number of embeddings.
"""

import time

import networkx as nx
import pytest

from repro.casestudies import epn, rpl
from repro.graph.digraph import DiGraph
from repro.graph.isomorphism import find_embeddings
from repro.reporting.tables import format_seconds, render_table

from benchmarks.conftest import report

_COUNTS = {}
_TIMES = {}


def _epn_host():
    mt, _ = epn.build_problem(2, 2, 1)
    return mt.template.graph()


def _rpl_host():
    mt, _ = rpl.build_problem(3, 2)
    return mt.template.graph()


def _route_pattern(host, labels):
    pattern = DiGraph("pattern")
    previous = None
    for index, label in enumerate(labels):
        node = f"p{index}"
        pattern.add_node(node, label=label)
        if previous is not None:
            pattern.add_edge(previous, node)
        previous = node
    return pattern


EPN_LABELS = ["generator", "ac_bus", "ru", "dc_bus", "load"]
RPL_LABELS = ["source", "conveyor", "machine_a", "conveyor", "machine_a",
              "conveyor", "sink"]

CASES = {
    "epn(2,2,1)-route": (_epn_host, EPN_LABELS),
    "rpl(3,2)-line": (_rpl_host, RPL_LABELS),
}


def _to_nx(graph):
    out = nx.DiGraph()
    for node in graph.nodes():
        out.add_node(node, label=graph.label(node))
    out.add_edges_from(graph.edges())
    return out


@pytest.mark.parametrize("case", list(CASES), ids=str)
def test_vf2_ours(benchmark, case):
    build_host, labels = CASES[case]
    host = build_host()
    pattern = _route_pattern(host, labels)
    started = time.perf_counter()
    embeddings = benchmark(find_embeddings, host, pattern)
    _TIMES.setdefault(case, {})["ours"] = time.perf_counter() - started
    _COUNTS.setdefault(case, {})["ours"] = len(embeddings)
    assert embeddings


@pytest.mark.parametrize("case", list(CASES), ids=str)
def test_vf2_networkx(benchmark, case):
    build_host, labels = CASES[case]
    host = _to_nx(build_host())
    pattern = _to_nx(_route_pattern(DiGraph(), labels)) if False else None
    # Build the pattern directly in networkx form.
    pat = nx.DiGraph()
    previous = None
    for index, label in enumerate(labels):
        node = f"p{index}"
        pat.add_node(node, label=label)
        if previous is not None:
            pat.add_edge(previous, node)
        previous = node

    def enumerate_nx():
        matcher = nx.algorithms.isomorphism.DiGraphMatcher(
            host, pat, node_match=lambda a, b: a["label"] == b["label"]
        )
        return sum(1 for _ in matcher.subgraph_monomorphisms_iter())

    started = time.perf_counter()
    count = benchmark(enumerate_nx)
    _TIMES.setdefault(case, {})["networkx"] = time.perf_counter() - started
    _COUNTS.setdefault(case, {})["networkx"] = count


@pytest.fixture(scope="module", autouse=True)
def _verify_counts(results_dir):
    yield
    for case, counts in _COUNTS.items():
        if "ours" in counts and "networkx" in counts:
            assert counts["ours"] == counts["networkx"], (case, counts)
    _render_report(results_dir)


def _render_report(results_dir):
    """Table + BENCH JSON twin: per case, embeddings and matcher times.

    Times are the full pytest-benchmark wall-clock (calibration rounds
    included) — coarse but diffable; the precise distributions stay in
    pytest-benchmark's own output.
    """
    if not _COUNTS:
        return
    rows = []
    data = {}
    for case in CASES:
        counts = _COUNTS.get(case, {})
        times = _TIMES.get(case, {})
        if "ours" not in counts:
            continue
        ours_t = times.get("ours")
        nx_t = times.get("networkx")
        rows.append(
            [
                case,
                counts["ours"],
                format_seconds(ours_t) if ours_t is not None else "-",
                format_seconds(nx_t) if nx_t is not None else "-",
                f"{nx_t / ours_t:.1f}x" if ours_t and nx_t else "-",
            ]
        )
        data[case] = {
            "embeddings": counts["ours"],
            "native_wall_clock": round(ours_t, 4) if ours_t else None,
            "networkx_wall_clock": round(nx_t, 4) if nx_t else None,
        }
    text = render_table(
        ["case", "embeddings", "native", "networkx", "ratio"],
        rows,
        title="Substrate - VF2 embedding enumeration vs networkx",
    )
    report(results_dir, "isomorphism.txt", text, data=data)
