"""Table II — EPN exploration under the three certificate scenarios.

For each ``(L, R, APU)`` template the paper reports MILP size, runtime
and iteration count for:

* ``only subgraph isomorphism`` — certificates generalized over
  embeddings, but refinement runs on the whole candidate (no path
  decomposition): few iterations, *large* disjunctive certificates and
  expensive solves;
* ``only decomposition``        — path-by-path refinement, but each
  certificate excludes exactly one invalid fragment (no isomorphism, no
  implementation widening): cheap iterations, *many* of them;
* ``complete``                  — both, the fastest.

Slow scenarios are capped at ``REPRO_BENCH_TIME_LIMIT`` seconds and
reported as ``>limit`` — the paper's corresponding cells run for
thousands of seconds, which is exactly the effect reproduced here.
"""

import time

import pytest

from repro.casestudies import epn
from repro.explore import ContrArcExplorer
from repro.explore.encoding import build_candidate_milp
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import Table2Row, render_table2

from benchmarks.conftest import (
    epn_templates,
    exploration_record,
    report,
    scenario_time_limit,
)

TEMPLATES = epn_templates()
_RESULTS = {}

SCENARIOS = {
    "only_iso": dict(use_isomorphism=True, use_decomposition=False),
    "only_decomp": dict(
        use_isomorphism=False,
        use_decomposition=True,
        widen_implementations=False,
    ),
    "complete": dict(use_isomorphism=True, use_decomposition=True),
    # The complete methodology with the in-run verification pool: same
    # answers bit for bit (pinned below), refinement wall-clock spread
    # over 4 workers. On a single-core host the pool degrades to IPC
    # overhead — the JSON twin records whatever the hardware gives.
    "complete_w4": dict(
        use_isomorphism=True, use_decomposition=True, workers=4
    ),
}


def _run(template, scenario):
    mt, spec = epn.build_problem(*template)
    explorer = ContrArcExplorer(
        mt,
        spec,
        max_iterations=20000,
        time_limit=scenario_time_limit(),
        profile=True,
        **SCENARIOS[scenario],
    )
    return explorer.explore()


def _template_id(template):
    return ",".join(map(str, template))


@pytest.mark.parametrize("template", TEMPLATES, ids=_template_id)
@pytest.mark.parametrize("scenario", list(SCENARIOS), ids=str)
def test_table2_scenario(benchmark, template, scenario):
    started = time.perf_counter()
    result = benchmark.pedantic(
        _run, args=(template, scenario), rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - started
    _RESULTS.setdefault(template, {})[scenario] = (result, elapsed)
    # Slow scenarios may exhaust either cap — wall clock or the 20000
    # iteration budget, whichever a given host reaches first.
    assert result.status in (
        ExplorationStatus.OPTIMAL,
        ExplorationStatus.TIME_LIMIT,
        ExplorationStatus.ITERATION_LIMIT,
    )


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    """Render the paper-style table after all scenarios ran."""
    yield
    _render_report(results_dir)


def _render_report(results_dir):
    rows = []
    for template in TEMPLATES:
        entries = _RESULTS.get(template, {})
        if "complete" not in entries:
            continue
        # MILP size from a fresh base model (matches the paper's columns).
        mt, spec = epn.build_problem(*template)
        model = build_candidate_milp(mt, spec)

        def cell(name):
            if name not in entries:
                return None, None
            result, elapsed = entries[name]
            if result.status is ExplorationStatus.TIME_LIMIT:
                return elapsed, result.stats.num_iterations
            return elapsed, result.stats.num_iterations

        iso_t, iso_i = cell("only_iso")
        dec_t, dec_i = cell("only_decomp")
        full_t, full_i = cell("complete")
        rows.append(
            Table2Row(
                _template_id(template),
                model.num_variables,
                model.num_constraints,
                iso_t,
                iso_i,
                dec_t,
                dec_i,
                full_t,
                full_i,
            )
        )
        # Reproduction claims per row (when nothing timed out):
        finished = {
            name: result
            for name, (result, _) in entries.items()
            if result.status is ExplorationStatus.OPTIMAL
        }
        if len(finished) == len(SCENARIOS):
            costs = {round(r.cost, 6) for r in finished.values()}
            assert len(costs) == 1, f"cost mismatch on {template}: {costs}"
            # Complete needs no more iterations than only-decomposition.
            assert (
                finished["complete"].stats.num_iterations
                <= finished["only_decomp"].stats.num_iterations
            )
        # Parallel verification never changes the exploration itself.
        if "complete" in finished and "complete_w4" in finished:
            assert finished["complete_w4"].cost == finished["complete"].cost
            assert (
                finished["complete_w4"].stats.num_iterations
                == finished["complete"].stats.num_iterations
            )
    text = render_table2(rows)
    data = {
        _template_id(template): {
            scenario: exploration_record(result, elapsed)
            for scenario, (result, elapsed) in entries.items()
        }
        for template, entries in _RESULTS.items()
    }
    report(results_dir, "table2_epn.txt", text, data=data)
