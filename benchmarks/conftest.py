"""Benchmark harness configuration.

Environment knobs (all optional):

* ``REPRO_BENCH_RPL_MAX_N``   — largest RPL size for the Fig. 5 sweeps
  (default 3; the paper sweeps to larger n on Gurobi).
* ``REPRO_BENCH_EPN_FULL``    — set to 1 to run all ten Table II
  templates; default runs a representative six-row subset.
* ``REPRO_BENCH_TIME_LIMIT``  — per-scenario wall-clock budget in
  seconds (default 120). Scenarios that exceed it are reported as
  ``>limit`` — the paper's slowest cells run for thousands of seconds
  by design, which is the very effect being demonstrated.

Each bench writes its paper-style table to ``benchmarks/results/``, and
(when it passes structured data to :func:`report`) a machine-readable
``BENCH_<name>.json`` twin so the perf trajectory is diffable across
PRs.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def rpl_max_n() -> int:
    return int(os.environ.get("REPRO_BENCH_RPL_MAX_N", "3"))


def epn_templates():
    from repro.casestudies.epn import TABLE2_TEMPLATES

    if os.environ.get("REPRO_BENCH_EPN_FULL", "0") == "1":
        return list(TABLE2_TEMPLATES)
    return [(1, 0, 0), (2, 0, 0), (1, 1, 0), (2, 1, 0), (1, 1, 1), (2, 1, 1)]


def scenario_time_limit() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "120"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def report(results_dir: pathlib.Path, name: str, text: str, data=None) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    ``data`` (any JSON-serializable object) additionally lands in
    ``BENCH_<stem>.json`` next to the table — per-case wall-clock,
    iteration counts and phase breakdowns, for machine consumption.
    """
    print()
    print(text)
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
    if data is not None:
        stem = pathlib.Path(name).stem
        (results_dir / f"BENCH_{stem}.json").write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )


def exploration_record(result, elapsed: float) -> dict:
    """Per-case JSON record from an ExplorationResult + wall-clock."""
    stats = result.stats
    record = {
        "status": result.status.value,
        "cost": result.cost,
        "wall_clock": round(elapsed, 4),
        "iterations": stats.num_iterations,
        "total_cuts": stats.total_cuts,
        "milp_variables": stats.milp_variables,
        "milp_constraints": stats.milp_constraints,
        "final_milp_variables": stats.final_milp_variables,
        "final_milp_constraints": stats.final_milp_constraints,
    }
    if stats.phase_profile:
        record["phases"] = {
            name: round(seconds, 4)
            for name, seconds in stats.phase_profile["totals"].items()
        }
    return record
