"""Benchmark harness configuration.

Environment knobs (all optional):

* ``REPRO_BENCH_RPL_MAX_N``   — largest RPL size for the Fig. 5 sweeps
  (default 3; the paper sweeps to larger n on Gurobi).
* ``REPRO_BENCH_EPN_FULL``    — set to 1 to run all ten Table II
  templates; default runs a representative six-row subset.
* ``REPRO_BENCH_TIME_LIMIT``  — per-scenario wall-clock budget in
  seconds (default 120). Scenarios that exceed it are reported as
  ``>limit`` — the paper's slowest cells run for thousands of seconds
  by design, which is the very effect being demonstrated.

Each bench writes its paper-style table to ``benchmarks/results/``.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def rpl_max_n() -> int:
    return int(os.environ.get("REPRO_BENCH_RPL_MAX_N", "3"))


def epn_templates():
    from repro.casestudies.epn import TABLE2_TEMPLATES

    if os.environ.get("REPRO_BENCH_EPN_FULL", "0") == "1":
        return list(TABLE2_TEMPLATES)
    return [(1, 0, 0), (2, 0, 0), (1, 1, 0), (2, 1, 0), (1, 1, 1), (2, 1, 1)]


def scenario_time_limit() -> float:
    return float(os.environ.get("REPRO_BENCH_TIME_LIMIT", "120"))


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def report(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    (results_dir / name).write_text(text + "\n", encoding="utf-8")
