"""Figure 5(b) — RPL runtime with and without compositional exploration.

The paper splits the two-line RPL into line A (with line B abstracted
behind the aggregate *Comb B* component) and line B, synthesizing the
stages separately. We sweep ``n`` and compare:

* ``flat``          — one exploration over the full two-line template;
* ``compositional`` — the two-stage split plus the Comb-B contract
  compatibility check.

Expected shape: both yield the same architecture family; the
compositional split's advantage grows with n (Fig. 5(b)'s trend).
"""

import time

import pytest

from repro.casestudies import rpl
from repro.explore import (
    CompositionalExplorer,
    ContrArcExplorer,
    SubsystemStage,
)
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import format_seconds, render_table

from benchmarks.conftest import (
    exploration_record,
    report,
    rpl_max_n,
    scenario_time_limit,
)

SIZES = list(range(1, rpl_max_n() + 1))
COMB_THROUGHPUT = 12.0
_RESULTS = {}


def _run_flat(n):
    mt, spec = rpl.build_problem(n, n)
    return ContrArcExplorer(
        mt, spec, max_iterations=5000, time_limit=scenario_time_limit()
    ).explore()


def _run_compositional(n):
    stages = [
        SubsystemStage(
            "line-A+combB",
            lambda prev, n=n: rpl.build_line_a_with_comb_b(
                n, comb_throughput=COMB_THROUGHPUT
            ),
        ),
        SubsystemStage(
            "line-B",
            lambda prev, n=n: rpl.build_line_b_only(n),
            lambda results: rpl.line_b_matches_comb_b(
                results["line-B"], comb_throughput=COMB_THROUGHPUT
            ),
        ),
    ]
    return CompositionalExplorer(stages, max_iterations=5000).explore()


@pytest.mark.parametrize("n", SIZES)
def test_fig5b_flat(benchmark, n):
    started = time.perf_counter()
    result = benchmark.pedantic(_run_flat, args=(n,), rounds=1, iterations=1)
    _RESULTS.setdefault(n, {})["flat"] = (result, time.perf_counter() - started)
    assert result.status is ExplorationStatus.OPTIMAL


@pytest.mark.parametrize("n", SIZES)
def test_fig5b_compositional(benchmark, n):
    started = time.perf_counter()
    result = benchmark.pedantic(
        _run_compositional, args=(n,), rounds=1, iterations=1
    )
    _RESULTS.setdefault(n, {})["comp"] = (result, time.perf_counter() - started)
    assert result.is_optimal
    assert result.compatible


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    """Render the paper-style table after all scenarios ran."""
    yield
    _render_report(results_dir)


def _render_report(results_dir):
    headers = [
        "n (=n_A=n_B)",
        "flat time",
        "flat iters",
        "compositional time",
        "comp iters",
        "speedup",
    ]
    rows = []
    for n in SIZES:
        entries = _RESULTS.get(n, {})
        if "flat" not in entries or "comp" not in entries:
            continue
        flat, flat_time = entries["flat"]
        comp, comp_time = entries["comp"]
        # Same total cost (the shared source is weight-0 in stage B).
        if flat.cost is not None and comp.total_cost is not None:
            assert abs(flat.cost - comp.total_cost) < 1e-6, (
                n,
                flat.cost,
                comp.total_cost,
            )
        rows.append(
            [
                n,
                format_seconds(flat_time),
                flat.stats.num_iterations,
                format_seconds(comp_time),
                comp.total_iterations,
                f"{flat_time / comp_time:.2f}x" if comp_time else "-",
            ]
        )
    text = render_table(
        headers,
        rows,
        title="Fig. 5(b) reproduction - RPL compositional exploration",
    )
    from repro.reporting.plots import render_series_plot

    series = {"flat": [], "compositional": []}
    for n in SIZES:
        entries = _RESULTS.get(n, {})
        if "flat" in entries:
            series["flat"].append((n, entries["flat"][1]))
        if "comp" in entries:
            series["compositional"].append((n, entries["comp"][1]))
    plot = render_series_plot(
        series, title="Fig. 5(b): flat vs compositional runtime (log scale)"
    )
    data = {}
    for n, entries in _RESULTS.items():
        row = {}
        if "flat" in entries:
            row["flat"] = exploration_record(*entries["flat"])
        if "comp" in entries:
            comp, comp_time = entries["comp"]
            row["compositional"] = {
                "status": "optimal" if comp.is_optimal else "failed",
                "cost": comp.total_cost,
                "wall_clock": round(comp_time, 4),
                "iterations": comp.total_iterations,
            }
        data[str(n)] = row
    report(
        results_dir, "fig5b_compositional.txt", text + "\n\n" + plot, data=data
    )
