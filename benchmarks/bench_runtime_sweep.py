"""Runtime sweep — serial vs. pooled vs. pooled + on-disk oracle cache.

Runs the same small Table II grid through the batch runtime three ways:

* ``serial``        — one process, no oracle cache (the pre-runtime
  baseline: each job is the old one-script-at-a-time loop);
* ``pooled``        — process-pool fan-out, per-process in-memory
  oracle only;
* ``pooled+cache``  — process pool sharing an on-disk SQLite oracle,
  run **twice** against the same database: the first pass seeds it, the
  second demonstrates the warm-start (nonzero hit rate, lower wall
  clock).

Knobs: ``REPRO_BENCH_SWEEP_WORKERS`` (default cores-1, capped at 4) and
``REPRO_BENCH_TIME_LIMIT`` (per-job engine budget, default 120 s).
"""

import os

import pytest

from repro.runtime.scheduler import Scheduler, default_workers
from repro.runtime.sweep import run_sweep, table2_grid

from benchmarks.conftest import report, scenario_time_limit

#: Small grid: two EPN templates x three scenarios = 6 jobs.
TEMPLATES = [(1, 0, 0), (2, 0, 0)]

_RESULTS = {}


def _workers() -> int:
    return int(
        os.environ.get("REPRO_BENCH_SWEEP_WORKERS", min(4, default_workers()))
    )


def _grid():
    return table2_grid(
        templates=TEMPLATES,
        engine={"max_iterations": 20000, "time_limit": scenario_time_limit()},
    )


def _record(name, reports):
    _RESULTS[name] = reports


def test_serial_sweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_sweep(_grid(), serial=True, use_cache=False),
        rounds=1,
        iterations=1,
    )
    _record("serial", [sweep])
    assert all(r.status in ("optimal", "time_limit") for r in sweep.results)


def test_pooled_sweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: run_sweep(_grid(), max_workers=_workers()),
        rounds=1,
        iterations=1,
    )
    _record("pooled", [sweep])
    assert all(r.status in ("optimal", "time_limit") for r in sweep.results)


def test_pooled_cached_sweep(benchmark, tmp_path_factory):
    cache = str(tmp_path_factory.mktemp("oracle") / "sweep.db")

    def run_twice():
        cold = run_sweep(
            _grid(),
            scheduler=Scheduler(max_workers=_workers(), cache_path=cache),
        )
        warm = run_sweep(
            _grid(),
            scheduler=Scheduler(max_workers=_workers(), cache_path=cache),
        )
        return cold, warm

    cold, warm = benchmark.pedantic(run_twice, rounds=1, iterations=1)
    _record("pooled+cache", [cold, warm])
    # The acceptance criteria of the runtime subsystem: the second run
    # against the same on-disk cache hits the oracle and is faster.
    assert warm.cache_totals["hits"] > 0
    assert warm.cache_totals["hit_rate"] > 0.5
    assert warm.wall_clock < cold.wall_clock


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    yield
    if not _RESULTS:
        return
    lines = [
        "Runtime sweep - Table II grid "
        f"({len(TEMPLATES)} EPN templates x 3 scenarios, "
        f"{_workers()} workers)",
        "",
    ]
    data = {}
    for name, sweeps in _RESULTS.items():
        for index, sweep in enumerate(sweeps):
            arm = name if len(sweeps) == 1 else f"{name} run {index + 1}"
            totals = sweep.cache_totals
            lines.append(
                f"{arm:22s} wall-clock {sweep.wall_clock:8.2f}s   "
                f"job-time sum {sweep.total_job_time:8.2f}s   "
                f"cache {totals['hits']:4d} hits / {totals['misses']:4d} "
                f"misses ({totals['hit_rate']:.0%})"
            )
            data[arm] = {
                "wall_clock": round(sweep.wall_clock, 4),
                "total_job_time": round(sweep.total_job_time, 4),
                "cache": dict(totals),
            }
    report(results_dir, "runtime_sweep.txt", "\n".join(lines), data=data)
