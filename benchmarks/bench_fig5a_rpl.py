"""Figure 5(a) — RPL exploration runtime vs problem size.

The paper plots ContrArc against ArchEx on the reconfigurable
production line while growing the per-stage candidate count
``n_A = n_B = n``. We reproduce the sweep with three explorers:

* ``contrarc``   — the complete method (isomorphism + decomposition);
* ``monolithic`` — the ArchEx-style one-shot MILP, whose compiled
  per-template-path timing constraints blow up with n;
* ``lazy``       — the lazy loop without certificates, the weakest
  comparable baseline.

Expected shape: all find the same cost; ContrArc's runtime grows far
slower than both baselines as n increases.
"""

import time

import pytest

from repro.casestudies import rpl
from repro.explore import ContrArcExplorer
from repro.explore.baseline import MonolithicExplorer, lazy_nogood_explorer
from repro.explore.engine import ExplorationStatus
from repro.reporting.tables import format_seconds, render_table

from benchmarks.conftest import (
    exploration_record,
    report,
    rpl_max_n,
    scenario_time_limit,
)

SIZES = list(range(1, rpl_max_n() + 1))
_RESULTS = {}


def _record(name, n, result, elapsed):
    _RESULTS.setdefault(n, {})[name] = (result, elapsed)


def _run_contrarc(n):
    mt, spec = rpl.build_problem(n, n)
    return ContrArcExplorer(
        mt,
        spec,
        max_iterations=5000,
        time_limit=scenario_time_limit(),
        profile=True,
    ).explore()


def _run_monolithic(n):
    mt, spec = rpl.build_problem(n, n)
    return MonolithicExplorer(mt, spec).explore()


def _run_lazy(n):
    mt, spec = rpl.build_problem(n, n)
    return lazy_nogood_explorer(
        mt, spec, max_iterations=20000, time_limit=scenario_time_limit()
    ).explore()


@pytest.mark.parametrize("n", SIZES)
def test_fig5a_contrarc(benchmark, n):
    started = time.perf_counter()
    result = benchmark.pedantic(_run_contrarc, args=(n,), rounds=1, iterations=1)
    _record("contrarc", n, result, time.perf_counter() - started)
    assert result.status is ExplorationStatus.OPTIMAL


@pytest.mark.parametrize("n", SIZES)
def test_fig5a_monolithic(benchmark, n):
    started = time.perf_counter()
    result = benchmark.pedantic(_run_monolithic, args=(n,), rounds=1, iterations=1)
    _record("monolithic", n, result, time.perf_counter() - started)
    assert result.status is ExplorationStatus.OPTIMAL


@pytest.mark.parametrize("n", SIZES)
def test_fig5a_lazy(benchmark, n):
    started = time.perf_counter()
    result = benchmark.pedantic(_run_lazy, args=(n,), rounds=1, iterations=1)
    _record("lazy", n, result, time.perf_counter() - started)
    assert result.status in (
        ExplorationStatus.OPTIMAL,
        ExplorationStatus.TIME_LIMIT,
    )


@pytest.fixture(scope="module", autouse=True)
def _module_report(results_dir):
    """Render the paper-style table after all scenarios ran."""
    yield
    _render_report(results_dir)


def _render_report(results_dir):
    """Render the Fig. 5(a) series and check the reproduction claims."""
    headers = [
        "n (=n_A=n_B)",
        "ContrArc time",
        "ContrArc iters",
        "ArchEx-mono time",
        "lazy time",
        "lazy iters",
        "same cost",
    ]
    rows = []
    for n in SIZES:
        entries = _RESULTS.get(n, {})
        if "contrarc" not in entries:
            continue
        contrarc, c_time = entries["contrarc"]
        mono, m_time = entries.get("monolithic", (None, None))
        lazy, l_time = entries.get("lazy", (None, None))
        costs = {
            round(r.cost, 6)
            for r, _ in entries.values()
            if r is not None and r.cost is not None
        }
        timed_out = any(
            r.status is ExplorationStatus.TIME_LIMIT
            for r, _ in entries.values()
            if r is not None
        )
        rows.append(
            [
                n,
                format_seconds(c_time),
                contrarc.stats.num_iterations,
                format_seconds(m_time),
                format_seconds(l_time)
                + (">" if lazy and lazy.status is ExplorationStatus.TIME_LIMIT else ""),
                lazy.stats.num_iterations if lazy else None,
                "yes" if len(costs) == 1 else ("n/a (timeout)" if timed_out else "NO"),
            ]
        )
        # Reproduction claim: whenever all explorers finished, the
        # optimal costs agree.
        if not timed_out:
            assert len(costs) == 1, f"cost mismatch at n={n}: {costs}"
    text = render_table(
        headers, rows, title="Fig. 5(a) reproduction - RPL runtime vs size"
    )
    from repro.reporting.plots import render_series_plot

    series = {"contrarc": [], "monolithic": [], "lazy": []}
    for n in SIZES:
        entries = _RESULTS.get(n, {})
        for name in series:
            if name in entries:
                result, elapsed = entries[name]
                finished = result.status is ExplorationStatus.OPTIMAL
                series[name].append((n, elapsed if finished else None))
    plot = render_series_plot(
        series, title="Fig. 5(a): exploration runtime vs n (log scale)"
    )
    data = {
        str(n): {
            name: exploration_record(result, elapsed)
            for name, (result, elapsed) in entries.items()
        }
        for n, entries in _RESULTS.items()
    }
    report(results_dir, "fig5a_rpl.txt", text + "\n\n" + plot, data=data)
