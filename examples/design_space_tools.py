#!/usr/bin/env python
"""Design-space tooling tour: top-k enumeration, audits, diagnosis, I/O.

Uses the EPN case study to demonstrate the utilities around the core
exploration loop:

1. enumerate the three cheapest *valid* power networks (TopKExplorer);
2. audit the winner's margins against every system requirement;
3. save the design space to JSON and reload it;
4. deliberately over-demand the loads and ask the IIS diagnoser *why*
   no architecture exists.

Run:  python examples/design_space_tools.py
"""

from repro.arch.io import load_problem, save_problem
from repro.arch.template import MappingTemplate
from repro.casestudies import epn
from repro.explore import TopKExplorer, audit_architecture
from repro.solver.diagnostics import diagnose_infeasible_exploration


def main():
    print("=== 1. top-3 valid architectures (EPN 1,0,0) ===")
    mapping_template, specification = epn.build_problem(1, 0, 0)
    top = TopKExplorer(mapping_template, specification, k=3).explore()
    for rank, architecture in enumerate(top, start=1):
        picks = ", ".join(
            f"{name}={impl.name}"
            for name, impl in sorted(architecture.selected_impls.items())
            if impl.has_attribute("loss") or impl.has_attribute("capacity")
        )
        print(f"  #{rank}: cost {architecture.cost:g} [{picks}]")

    print("\n=== 2. audit of the optimum ===")
    audit = audit_architecture(mapping_template, specification, top[0])
    print(audit.render())
    worst = audit.worst_slack()
    print(f"tightest requirement: {worst.viewpoint} @ {worst.scope} "
          f"(slack {worst.slack:g})")

    print("\n=== 3. JSON round-trip ===")
    save_problem(
        mapping_template.template, mapping_template.library, "epn_problem.json"
    )
    template, library = load_problem("epn_problem.json")
    rebuilt = MappingTemplate(template, library)
    print(
        f"saved + reloaded: {template.num_components} slots, "
        f"{len(library)} implementations, "
        f"{len(rebuilt.structural_vars())} decision variables"
    )

    print("\n=== 4. diagnosing an impossible design space ===")
    heavy_mt, heavy_spec = epn.build_problem(1, 0, 0, load_demand=50.0)
    print(diagnose_infeasible_exploration(heavy_mt, heavy_spec))


if __name__ == "__main__":
    main()
