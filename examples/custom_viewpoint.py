#!/usr/bin/env python
"""Defining a custom requirement viewpoint.

The built-in generators cover the paper's interconnection, flow/power
and timing viewpoints. This example adds a *weight* viewpoint for a
drone delivery network: every implementation has a mass attribute, the
airframe has a per-route payload budget, and heavier implementations are
"worse" — so the certificate generator automatically widens invalid
choices to every heavier implementation.

Run:  python examples/custom_viewpoint.py
"""

from typing import Optional, Sequence

from repro import (
    Component,
    ComponentType,
    ContrArcExplorer,
    Library,
    MappingTemplate,
    Template,
)
from repro.contracts import AttributeDirection, Contract, Viewpoint
from repro.contracts.viewpoints import FLOW
from repro.expr import TRUE, LinExpr, conjunction
from repro.spec import FlowSpec, InterconnectionSpec, Specification
from repro.spec.base import ViewpointSpec

WEIGHT = Viewpoint(
    "weight",
    path_specific=True,
    attribute="mass",
    direction=AttributeDirection.HIGHER_IS_WORSE,
)


class WeightSpec(ViewpointSpec):
    """Per-route payload budget: sum of masses along a route."""

    def __init__(self, max_route_mass: float) -> None:
        super().__init__(WEIGHT)
        self.max_route_mass = max_route_mass

    def component_contract(self, mapping_template, component) -> Contract:
        # Mass is purely an attribute of the chosen implementation; the
        # binding u(mass, i) = sum m(i,x) * mass(x) comes from the
        # interconnection contract, so nothing extra is needed locally.
        return Contract(f"C^weight[{component.name}]", TRUE, TRUE)

    def system_contract(
        self, mapping_template, path: Optional[Sequence[str]] = None
    ) -> Contract:
        assert path is not None, "weight is path-specific"
        masses = [
            mapping_template.attribute("mass", name).to_expr()
            for name in path
            if "mass" in mapping_template.template.component(name).ctype.attributes
        ]
        guarantee = (
            LinExpr.sum(masses) <= self.max_route_mass if masses else TRUE
        )
        return Contract(f"C_s^weight[{path[0]}->{path[-1]}]", TRUE, guarantee)


def main():
    hub_t = ComponentType("hub")
    battery_t = ComponentType("battery", ("mass", "throughput"))
    motor_t = ComponentType("motor", ("mass", "throughput"))
    payload_t = ComponentType("payload")

    library = Library()
    library.new("hub_std", "hub", cost=1.0)
    library.new("bay_std", "payload", cost=1.0)
    library.new("bat_light", "battery", cost=9.0, mass=1.0, throughput=5.0)
    library.new("bat_heavy", "battery", cost=4.0, mass=3.0, throughput=5.0)
    library.new("mot_light", "motor", cost=8.0, mass=0.8, throughput=5.0)
    library.new("mot_heavy", "motor", cost=3.0, mass=2.5, throughput=5.0)

    template = Template("drone")
    template.add_component(
        Component("hub", hub_t, max_fan_out=1, generated_flow=2.0,
                  params={"required": 1})
    )
    template.add_component(Component("battery", battery_t, max_fan_in=1, max_fan_out=1))
    template.add_component(Component("motor", motor_t, max_fan_in=1, max_fan_out=1))
    template.add_component(
        Component("bay", payload_t, max_fan_in=1, consumed_flow=2.0,
                  params={"required": 1})
    )
    template.connect("hub", "battery")
    template.connect("battery", "motor")
    template.connect("motor", "bay")
    template.mark_source_type("hub")
    template.mark_sink_type("payload")

    mapping_template = MappingTemplate(template, library)
    specification = Specification(
        InterconnectionSpec(),
        [
            FlowSpec(FLOW, min_delivery=2.0),
            WeightSpec(max_route_mass=2.5),
        ],
    )

    result = ContrArcExplorer(mapping_template, specification).explore_or_raise()
    print("=== custom weight viewpoint ===")
    print(f"cost: {result.cost:g}, iterations: {result.stats.num_iterations}")
    for name in sorted(result.architecture.selected_impls):
        impl = result.architecture.implementation_of(name)
        mass = (
            f", mass {impl.attribute('mass'):g}"
            if impl.has_attribute("mass")
            else ""
        )
        print(f"  {name:8s} -> {impl.name} (cost {impl.cost:g}{mass})")
    rejected = [
        r.violated_viewpoint for r in result.stats.iterations
        if r.violated_viewpoint
    ]
    print(f"violations along the way: {rejected}")


if __name__ == "__main__":
    main()
