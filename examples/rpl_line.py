#!/usr/bin/env python
"""Reconfigurable production line exploration (paper Section V-A, Fig. 4a).

Explores the two-line RPL with n_A = 3 and n_B = 2 candidate
components per stage, prints the selected mapping, and writes the
Fig. 4(a)-style picture (components + chosen implementations) to
``rpl_architecture.dot`` (render with ``dot -Tpng``).

Run:  python examples/rpl_line.py [n_a] [n_b]
"""

import sys

from repro.casestudies import rpl
from repro.explore import ContrArcExplorer
from repro.graph.dot import write_dot


def main():
    n_a = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    n_b = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(f"=== RPL exploration (n_A={n_a}, n_B={n_b}) ===")
    mapping_template, specification = rpl.build_problem(n_a, n_b)
    template = mapping_template.template
    print(
        f"template: {template.num_components} component slots, "
        f"{template.num_edges} candidate connections"
    )

    explorer = ContrArcExplorer(mapping_template, specification)
    result = explorer.explore_or_raise()

    print(f"optimal cost: {result.cost:g}")
    print(f"iterations:   {result.stats.num_iterations}")
    print(f"certificates: {result.stats.total_cuts}")
    print(f"runtime:      {result.stats.total_time:.2f}s")
    print()
    print("selected production line:")
    for line in ("A", "B"):
        chain = [
            (name, impl)
            for name, impl in sorted(result.architecture.selected_impls.items())
            if f"_{line}_" in name
        ]
        if not chain:
            continue
        print(f"  line {line}:")
        for name, impl in chain:
            latency = (
                f", latency {impl.attribute('latency'):g}"
                if impl.has_attribute("latency")
                else ""
            )
            print(f"    {name:10s} -> {impl.name} (cost {impl.cost:g}{latency})")

    out = "rpl_architecture.dot"
    write_dot(result.architecture.mapping_graph(), out, title=f"RPL {n_a},{n_b}")
    print(f"\nwrote {out} (Fig. 4a style; render with `dot -Tpng {out}`)")


if __name__ == "__main__":
    main()
