#!/usr/bin/env python
"""Quickstart: explore a three-stage system with ContrArc.

Builds a tiny video-analytics pipeline — camera -> processor -> storage —
where two candidate processors compete. Requirements: the pipeline must
sustain 4 streams (flow viewpoint) and deliver each frame end-to-end
within 12 ms (timing viewpoint). The cheap processor is too slow, so the
exploration loop visibly iterates: candidate, refinement failure,
certificate, next candidate.

Run:  python examples/quickstart.py
"""

from repro import (
    Component,
    ComponentType,
    ContrArcExplorer,
    Library,
    MappingTemplate,
    Template,
)
from repro.contracts.viewpoints import FLOW, TIMING
from repro.spec import FlowSpec, InterconnectionSpec, Specification, TimingSpec


def build_problem():
    camera_t = ComponentType("camera")
    processor_t = ComponentType("processor", ("latency", "throughput"))
    storage_t = ComponentType("storage")

    library = Library()
    library.new("cam_hd", "camera", cost=2.0)
    library.new("store_ssd", "storage", cost=3.0)
    library.new("proc_embedded", "processor", cost=5.0, latency=20.0, throughput=6.0)
    library.new("proc_gpu", "processor", cost=12.0, latency=4.0, throughput=16.0)

    template = Template("video-pipeline")
    template.add_component(
        Component(
            "camera",
            camera_t,
            max_fan_out=1,
            generated_flow=4.0,
            output_jitter=0.5,
            params={"required": 1},
        )
    )
    for slot in ("proc_a", "proc_b"):
        template.add_component(
            Component(
                slot,
                processor_t,
                max_fan_in=1,
                max_fan_out=1,
                input_jitter=1.0,
                output_jitter=0.5,
            )
        )
    template.add_component(
        Component(
            "storage",
            storage_t,
            max_fan_in=1,
            consumed_flow=4.0,
            input_jitter=1.0,
            params={"required": 1},
        )
    )
    template.connect_all(["camera"], ["proc_a", "proc_b"])
    template.connect_all(["proc_a", "proc_b"], ["storage"])
    template.mark_source_type("camera")
    template.mark_sink_type("storage")

    mapping_template = MappingTemplate(template, library, time_bound=100.0)
    specification = Specification(
        InterconnectionSpec(),
        [
            FlowSpec(FLOW, max_source_flow=50.0, max_loss=0.5, min_delivery=4.0),
            TimingSpec(
                TIMING, max_latency=12.0, source_jitter=1.0, sink_jitter=2.0
            ),
        ],
    )
    return mapping_template, specification


def main():
    mapping_template, specification = build_problem()
    explorer = ContrArcExplorer(mapping_template, specification)
    result = explorer.explore_or_raise()

    print("=== ContrArc quickstart ===")
    print(f"status:     {result.status.value}")
    print(f"cost:       {result.cost:g}")
    print(f"iterations: {result.stats.num_iterations}")
    print(f"cuts:       {result.stats.total_cuts}")
    print()
    print("selected architecture:")
    for name in sorted(result.architecture.selected_impls):
        impl = result.architecture.implementation_of(name)
        print(f"  {name:10s} -> {impl.name} (cost {impl.cost:g})")
    print("connections:")
    for src, dst in result.architecture.selected_edges:
        print(f"  {src} -> {dst}")
    print()
    print("iteration log:")
    for record in result.stats.iterations:
        verdict = record.violated_viewpoint or "ACCEPTED"
        print(
            f"  #{record.index}: cost={record.candidate_cost:g} "
            f"verdict={verdict} (+{record.cuts_added} cuts)"
        )


if __name__ == "__main__":
    main()
