#!/usr/bin/env python
"""Aircraft power network exploration (paper Section V-B, Fig. 4b).

Explores the EPN template with one generator/bus/RU/load per side plus
an APU, under per-route power-loss budgets and a generator-to-load
delivery deadline. Prints the selected network side by side and writes
the Fig. 4(b)-style picture to ``epn_architecture.dot``.

Run:  python examples/epn_power.py [left] [right] [apu]
"""

import sys

from repro.casestudies import epn
from repro.explore import ContrArcExplorer
from repro.graph.dot import write_dot


def main():
    left = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    right = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    apu = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    print(f"=== EPN exploration (L={left}, R={right}, APU={apu}) ===")
    mapping_template, specification = epn.build_problem(left, right, apu)
    explorer = ContrArcExplorer(mapping_template, specification)
    result = explorer.explore_or_raise()

    print(f"optimal cost: {result.cost:g}")
    print(f"iterations:   {result.stats.num_iterations}")
    print(f"runtime:      {result.stats.total_time:.2f}s")
    print()
    arch = result.architecture
    print("selected power network:")
    for name in sorted(arch.selected_impls):
        impl = arch.implementation_of(name)
        extras = []
        for attr in ("capacity", "latency", "loss"):
            if impl.has_attribute(attr):
                extras.append(f"{attr}={impl.attribute(attr):g}")
        suffix = f" ({', '.join(extras)})" if extras else ""
        print(f"  {name:10s} -> {impl.name}{suffix}")
    print("power routes:")
    graph = arch.graph()
    for src, dst in sorted(arch.selected_edges):
        print(f"  {src} -> {dst}")
    # Per-route loss audit.
    from repro.graph.paths import all_source_sink_paths

    sources = [n for n in graph.nodes() if graph.label(n) == "generator"]
    sinks = [n for n in graph.nodes() if graph.label(n) == "load"]
    print("\nper-route conversion losses (budget "
          f"{epn.DEFAULT_LOSS_BUDGET:g}):")
    for path in all_source_sink_paths(graph, sources, sinks):
        loss = sum(
            arch.implementation_of(n).attribute("loss")
            for n in path
            if arch.implementation_of(n).has_attribute("loss")
        )
        print(f"  {' -> '.join(path)}: {loss:g}")

    out = "epn_architecture.dot"
    write_dot(arch.mapping_graph(), out, title=f"EPN {left},{right},{apu}")
    print(f"\nwrote {out} (Fig. 4b style; render with `dot -Tpng {out}`)")


if __name__ == "__main__":
    main()
