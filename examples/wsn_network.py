#!/usr/bin/env python
"""Wireless sensor network exploration with a reliability viewpoint.

Selects relay radios for a two-tier sensor-to-gateway network under
three simultaneous viewpoints: data-rate flow, forwarding deadline, and
per-route delivery probability (series reliability, handled in the log
domain). Shows how violations of *different* viewpoints interleave
during exploration and how the audit reports reliability slack.

Run:  python examples/wsn_network.py [sensors] [relays] [tiers]
"""

import math
import sys

from repro.casestudies import wsn
from repro.explore import ContrArcExplorer, audit_architecture


def main():
    sensors = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    relays = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    tiers = int(sys.argv[3]) if len(sys.argv) > 3 else 2

    print(f"=== WSN exploration ({sensors} sensors, {relays} relays/tier, "
          f"{tiers} tiers) ===")
    mapping_template, specification = wsn.build_problem(sensors, relays, tiers)
    result = ContrArcExplorer(mapping_template, specification).explore_or_raise()

    print(f"optimal cost: {result.cost:g}")
    print(f"iterations:   {result.stats.num_iterations}")
    rejected = [
        r.violated_viewpoint
        for r in result.stats.iterations
        if r.violated_viewpoint
    ]
    print(f"violations:   {rejected}")
    print()
    print("selected radios:")
    for name, impl in sorted(result.architecture.selected_impls.items()):
        if not impl.has_attribute("log_fail"):
            continue
        reliability = math.exp(-impl.attribute("log_fail") / 1000.0)
        print(
            f"  {name:12s} -> {impl.name} "
            f"(latency {impl.attribute('latency'):g}, "
            f"reliability {reliability:.4f})"
        )

    print()
    audit = audit_architecture(mapping_template, specification,
                               result.architecture)
    print(audit.render())


if __name__ == "__main__":
    main()
