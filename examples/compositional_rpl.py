#!/usr/bin/env python
"""Compositional exploration of the RPL (paper Section V-A, Fig. 5b).

Synthesizes the two-line RPL in two ways:

1. **flat** — one exploration over the full two-line template;
2. **compositional** — line A first, against the aggregated *Comb B*
   component that abstracts line B behind an assumed throughput, then
   line B on its own, finishing with the contract-compatibility check
   between the synthesized line B and the Comb B abstraction.

Prints both runtimes; the compositional split wins increasingly as the
template grows (the Fig. 5(b) trend).

Run:  python examples/compositional_rpl.py [n]
"""

import sys
import time

from repro.casestudies import rpl
from repro.explore import (
    CompositionalExplorer,
    ContrArcExplorer,
    SubsystemStage,
)

COMB_THROUGHPUT = 12.0


def flat(n):
    mapping_template, specification = rpl.build_problem(n, n)
    t0 = time.perf_counter()
    result = ContrArcExplorer(mapping_template, specification).explore_or_raise()
    return result, time.perf_counter() - t0


def compositional(n):
    def build_line_a(previous):
        return rpl.build_line_a_with_comb_b(n, comb_throughput=COMB_THROUGHPUT)

    def build_line_b(previous):
        return rpl.build_line_b_only(n)

    def check_line_b(results):
        return rpl.line_b_matches_comb_b(
            results["line-B"], comb_throughput=COMB_THROUGHPUT
        )

    explorer = CompositionalExplorer(
        [
            SubsystemStage("line-A+combB", build_line_a),
            SubsystemStage("line-B", build_line_b, check_line_b),
        ]
    )
    return explorer.explore()


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    print(f"=== RPL compositional exploration (n_A = n_B = {n}) ===")
    flat_result, flat_time = flat(n)
    print(
        f"flat:          cost={flat_result.cost:g} "
        f"iters={flat_result.stats.num_iterations} time={flat_time:.2f}s"
    )

    comp_result = compositional(n)
    print(
        f"compositional: cost={comp_result.total_cost:g} "
        f"iters={comp_result.total_iterations} "
        f"time={comp_result.total_time:.2f}s "
        f"compatible={comp_result.compatible}"
    )
    for stage, result in comp_result.stage_results.items():
        print(
            f"  stage {stage}: cost={result.cost:g} "
            f"iters={result.stats.num_iterations} "
            f"time={result.stats.total_time:.2f}s"
        )
    if flat_time > 0:
        print(f"speedup: {flat_time / comp_result.total_time:.2f}x")


if __name__ == "__main__":
    main()
